"""Constraints and the cost function of Section 4.3.

The scalability knob selects, for each client population, the best
server configuration subject to:

1. average latency <= 7000 µs,
2. bandwidth usage <= 3 MB/s,
3. best fault-tolerance possible given 1-2,
4. ties broken by the lowest cost::

       Cost_i = p * Latency_i / 7000us + (1 - p) * Bandwidth_i / 3MB/s

with p = 0.5 in the paper (latency and bandwidth weighted equally).
The paper stresses the cost function is "a heuristic rule of thumb"
and that other developers could define different ones — so it is a
plain dataclass any policy can swap out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.config import (
    PAPER_BANDWIDTH_LIMIT_MBPS,
    PAPER_COST_WEIGHT,
    PAPER_LATENCY_LIMIT_US,
)


@dataclass(frozen=True)
class Constraints:
    """Hard limits (requirements 1-2 of Section 4.3)."""

    max_latency_us: float = PAPER_LATENCY_LIMIT_US
    max_bandwidth_mbps: float = PAPER_BANDWIDTH_LIMIT_MBPS

    def __post_init__(self) -> None:
        if self.max_latency_us <= 0 or self.max_bandwidth_mbps <= 0:
            raise ConfigurationError("constraint limits must be positive")

    def satisfied_by(self, latency_us: float,
                     bandwidth_mbps: float) -> bool:
        """True when both hard limits hold."""
        return (latency_us <= self.max_latency_us
                and bandwidth_mbps <= self.max_bandwidth_mbps)


@dataclass(frozen=True)
class CostFunction:
    """The paper's tie-breaking heuristic (requirement 4)."""

    latency_weight: float = PAPER_COST_WEIGHT
    latency_norm_us: float = PAPER_LATENCY_LIMIT_US
    bandwidth_norm_mbps: float = PAPER_BANDWIDTH_LIMIT_MBPS

    def __post_init__(self) -> None:
        if not 0.0 <= self.latency_weight <= 1.0:
            raise ConfigurationError("weight p must be in [0, 1]")
        if self.latency_norm_us <= 0 or self.bandwidth_norm_mbps <= 0:
            raise ConfigurationError("normalizers must be positive")

    def cost(self, latency_us: float, bandwidth_mbps: float) -> float:
        """The paper's weighted, normalized cost."""
        p = self.latency_weight
        return (p * latency_us / self.latency_norm_us
                + (1.0 - p) * bandwidth_mbps / self.bandwidth_norm_mbps)

    @staticmethod
    def from_constraints(constraints: Constraints,
                         latency_weight: float = PAPER_COST_WEIGHT
                         ) -> "CostFunction":
        """The paper normalizes by the constraint limits themselves."""
        return CostFunction(
            latency_weight=latency_weight,
            latency_norm_us=constraints.max_latency_us,
            bandwidth_norm_mbps=constraints.max_bandwidth_mbps)
