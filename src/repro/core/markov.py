"""Continuous-time Markov-chain availability model.

A rigorous companion to the closed-form :class:`AvailabilityModel`:
the replica group is a birth-death chain on the number of live
replicas.  Replicas fail independently at rate ``1/MTTF``; a repair
process (respawn + state transfer) restores one replica at a time at
rate ``1/MTTR``.  The service is *available* in every state with at
least one live replica, except that each transition out of the
full-service state charges the style's failover window.

The steady-state distribution of a birth-death chain has the standard
product form; with it we compute availability, the expected number of
live replicas, and the mean time to total failure (all replicas down
simultaneously) — the quantity an operator sizes redundancy against.

Uses numpy for the linear algebra of the general (non-birth-death)
case so custom generators can be analyzed too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy

from repro.errors import PolicyError
from repro.replication.styles import ReplicationStyle


@dataclass(frozen=True)
class RepairableGroupModel:
    """Parameters of the replica birth-death chain (rates per µs)."""

    n_replicas: int
    mttf_us: float = 3.6e9        # per-replica time to failure
    mttr_us: float = 5.0e6        # respawn + state-transfer time
    failover_us: float = 500_000.0  # service blip per primary fault

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise PolicyError("need at least one replica")
        if self.mttf_us <= 0 or self.mttr_us <= 0:
            raise PolicyError("MTTF and MTTR must be positive")
        if self.failover_us < 0:
            raise PolicyError("failover window must be >= 0")

    # ------------------------------------------------------------------
    # Steady state (product form for the birth-death chain)
    # ------------------------------------------------------------------
    def steady_state(self) -> List[float]:
        """P(k replicas alive) for k = 0..n, in steady state.

        State k fails at rate k/MTTF (k independent replicas) and
        repairs at rate 1/MTTR (one respawn at a time).
        """
        n = self.n_replicas
        lam = 1.0 / self.mttr_us          # repair (birth) rate
        mu = 1.0 / self.mttf_us           # per-replica failure rate
        # pi_k proportional to prod_{j=k+1..n} (j*mu) / lam ... build
        # downward from full service.
        weights = numpy.zeros(n + 1)
        weights[n] = 1.0
        for k in range(n - 1, -1, -1):
            # Transition n..k: each step down multiplies by
            # (failure rate out of k+1) / (repair rate into k+1).
            weights[k] = weights[k + 1] * ((k + 1) * mu) / lam
        total = weights.sum()
        return list(weights / total)

    def availability(self) -> float:
        """P(service answers) = P(>=1 replica) minus the failover
        blips charged on departures from the full state."""
        pi = self.steady_state()
        p_some_alive = 1.0 - pi[0]
        # Only the *primary's* fault interrupts service (backup faults
        # are masked by the group), so the blip rate is one replica's
        # failure rate, weighted by the time some replica is primary.
        blip_fraction = (1.0 - pi[0]) * (1.0 / self.mttf_us) \
            * self.failover_us
        return max(0.0, p_some_alive - blip_fraction)

    def expected_live_replicas(self) -> float:
        """Steady-state mean of live replicas."""
        pi = self.steady_state()
        return float(sum(k * p for k, p in enumerate(pi)))

    # ------------------------------------------------------------------
    # Mean time to total failure (absorbing chain, numpy solve)
    # ------------------------------------------------------------------
    def mean_time_to_total_failure_us(self) -> float:
        """Expected time from full service until all replicas are
        simultaneously down (state 0 absorbing).

        Solves the standard first-passage system Q_t m = -1 over the
        transient states 1..n.
        """
        n = self.n_replicas
        lam = 1.0 / self.mttr_us
        mu = 1.0 / self.mttf_us
        # Generator over transient states 1..n.
        q = numpy.zeros((n, n))
        for k in range(1, n + 1):
            i = k - 1
            down = k * mu
            up = lam if k < n else 0.0
            q[i, i] = -(down + up)
            if k > 1:
                q[i, i - 1] = down
            if k < n:
                q[i, i + 1] = up
        rhs = -numpy.ones(n)
        first_passage = numpy.linalg.solve(q, rhs)
        return float(first_passage[n - 1])


def failover_window_for_style(style: ReplicationStyle,
                              active_us: float = 1_000.0,
                              warm_us: float = 500_000.0,
                              cold_us: float = 5_000_000.0) -> float:
    """Style-dependent failover window (the same taxonomy as the
    closed-form model): active masks faults nearly instantly, warm
    passive pays detection + promotion, cold pays respawn + restore."""
    if style in (ReplicationStyle.ACTIVE, ReplicationStyle.SEMI_ACTIVE):
        return active_us
    if style is ReplicationStyle.WARM_PASSIVE \
            or style is ReplicationStyle.HYBRID:
        return warm_us
    return cold_us


def plan_redundancy(target_availability: float,
                    style: ReplicationStyle,
                    mttf_us: float = 3.6e9, mttr_us: float = 5.0e6,
                    max_replicas: int = 7) -> int:
    """Smallest replica count whose CTMC availability meets the
    target, for the given style.  Raises when unreachable."""
    if not 0.0 < target_availability < 1.0:
        raise PolicyError("target availability must be in (0, 1)")
    window = failover_window_for_style(style)
    for n in range(1, max_replicas + 1):
        model = RepairableGroupModel(n_replicas=n, mttf_us=mttf_us,
                                     mttr_us=mttr_us,
                                     failover_us=window)
        if model.availability() >= target_availability:
            return n
    raise PolicyError(
        f"availability {target_availability} unreachable with "
        f"{max_replicas} {style.value} replicas")
