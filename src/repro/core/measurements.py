"""Empirical profile data: the input to high-level knob synthesis.

"The first step in implementing a scalability knob is to gather enough
data about the system's behavior in order to construct a policy"
(Section 4.3).  A :class:`Profile` is that data: one
:class:`Measurement` per (configuration, client count) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import PolicyError
from repro.replication.styles import ReplicationStyle


@dataclass(frozen=True, order=True)
class ConfigPoint:
    """One server configuration: replication style + redundancy level.

    Rendered in the paper's Table 2 notation, e.g. ``A(3)`` for three
    active replicas.
    """

    style: ReplicationStyle
    n_replicas: int

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise PolicyError("a configuration needs at least one replica")

    @property
    def faults_tolerated(self) -> int:
        """Crash faults survivable: replicas minus one (requirement 3's
        currency in Table 2)."""
        return self.n_replicas - 1

    @property
    def label(self) -> str:
        return f"{self.style.short}({self.n_replicas})"

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class Measurement:
    """Measured behaviour of one configuration under one client load."""

    config: ConfigPoint
    n_clients: int
    latency_us: float
    jitter_us: float
    bandwidth_mbps: float
    throughput_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise PolicyError("n_clients must be >= 1")
        if self.latency_us < 0 or self.bandwidth_mbps < 0:
            raise PolicyError("measurements must be non-negative")


class Profile:
    """A queryable collection of measurements."""

    def __init__(self, measurements: Iterable[Measurement] = ()):
        self._data: Dict[Tuple[ConfigPoint, int], Measurement] = {}
        for measurement in measurements:
            self.add(measurement)

    def add(self, measurement: Measurement) -> None:
        """Insert or replace one measurement."""
        key = (measurement.config, measurement.n_clients)
        self._data[key] = measurement

    def get(self, config: ConfigPoint,
            n_clients: int) -> Optional[Measurement]:
        """Measurement for (config, n_clients), or None."""
        return self._data.get((config, n_clients))

    def for_clients(self, n_clients: int) -> List[Measurement]:
        """All configurations measured at one client count."""
        return sorted(
            (m for (c, n), m in self._data.items() if n == n_clients),
            key=lambda m: (m.config.style.value, m.config.n_replicas))

    def configs(self) -> List[ConfigPoint]:
        """All measured configurations, sorted."""
        return sorted({config for config, _ in self._data},
                      key=lambda c: (c.style.value, c.n_replicas))

    def client_counts(self) -> List[int]:
        """All measured client counts, sorted."""
        return sorted({n for _, n in self._data})

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self._data.values())

    # ------------------------------------------------------------------
    # Normalization (Fig. 9: values scaled to their maxima)
    # ------------------------------------------------------------------
    def maxima(self) -> Tuple[float, float, int]:
        """(max latency, max bandwidth, max faults tolerated)."""
        if not self._data:
            raise PolicyError("empty profile")
        max_latency = max(m.latency_us for m in self)
        max_bandwidth = max(m.bandwidth_mbps for m in self)
        max_faults = max(m.config.faults_tolerated for m in self)
        return max_latency, max_bandwidth, max_faults
