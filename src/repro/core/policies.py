"""Adaptation policies: the logic behind the knobs.

Two policies from the paper's evaluation:

- :class:`ScalabilityPolicy` — the Section 4.3 high-level knob: for a
  given client population, pick the configuration that (1) meets the
  latency constraint, (2) meets the bandwidth constraint, (3) has the
  best fault-tolerance, (4) breaks ties by lowest cost.  Produces the
  paper's Table 2.
- :class:`ThresholdSwitchPolicy` — the Section 4.2 low-level policy:
  switch to active replication when the request arrival rate climbs
  above a threshold, back to warm passive when it falls (Fig. 6), with
  hysteresis so a noisy rate does not cause switch thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cost import Constraints, CostFunction
from repro.core.measurements import ConfigPoint, Measurement, Profile
from repro.errors import ContractViolation, PolicyError
from repro.replication.styles import ReplicationStyle


@dataclass(frozen=True)
class PolicyEntry:
    """One row of the synthesized policy (one row of Table 2)."""

    n_clients: int
    config: ConfigPoint
    latency_us: float
    bandwidth_mbps: float
    faults_tolerated: int
    cost: float


class ScalabilityPolicy:
    """The high-level scalability knob's decision table."""

    def __init__(self, entries: Dict[int, Optional[PolicyEntry]],
                 constraints: Constraints, cost_fn: CostFunction):
        self.entries = dict(entries)
        self.constraints = constraints
        self.cost_fn = cost_fn

    @classmethod
    def synthesize(cls, profile: Profile,
                   constraints: Optional[Constraints] = None,
                   cost_fn: Optional[CostFunction] = None
                   ) -> "ScalabilityPolicy":
        """Derive the policy from empirical data (Section 4.3 steps).

        For each client count: filter by the hard constraints, keep
        the configurations with the maximum faults tolerated, then
        pick the lowest-cost survivor.  A client count with no feasible
        configuration maps to ``None`` (the operator must be notified).
        """
        constraints = constraints or Constraints()
        cost_fn = cost_fn or CostFunction.from_constraints(constraints)
        entries: Dict[int, Optional[PolicyEntry]] = {}
        for n_clients in profile.client_counts():
            candidates = [
                m for m in profile.for_clients(n_clients)
                if constraints.satisfied_by(m.latency_us, m.bandwidth_mbps)
            ]
            if not candidates:
                entries[n_clients] = None
                continue
            best_ft = max(m.config.faults_tolerated for m in candidates)
            finalists = [m for m in candidates
                         if m.config.faults_tolerated == best_ft]
            winner = min(
                finalists,
                key=lambda m: (cost_fn.cost(m.latency_us, m.bandwidth_mbps),
                               m.config.label))
            entries[n_clients] = PolicyEntry(
                n_clients=n_clients, config=winner.config,
                latency_us=winner.latency_us,
                bandwidth_mbps=winner.bandwidth_mbps,
                faults_tolerated=winner.config.faults_tolerated,
                cost=cost_fn.cost(winner.latency_us, winner.bandwidth_mbps))
        return cls(entries, constraints, cost_fn)

    def best_configuration(self, n_clients: int) -> PolicyEntry:
        """Requirement lookup; raises :class:`ContractViolation` when
        no configuration can honour the constraints (the paper: "the
        system notifies the operators that the tuning policy can no
        longer be honored")."""
        if n_clients not in self.entries:
            raise PolicyError(
                f"no profile data for {n_clients} clients "
                f"(profiled: {sorted(self.entries)})")
        entry = self.entries[n_clients]
        if entry is None:
            raise ContractViolation(
                f"no configuration satisfies the constraints for "
                f"{n_clients} clients; a new policy must be defined")
        return entry

    def table(self) -> List[PolicyEntry]:
        """All feasible rows, ordered by client count (Table 2)."""
        return [entry for _, entry in sorted(self.entries.items())
                if entry is not None]

    def max_supported_clients(self) -> int:
        """Largest profiled client count with a feasible configuration."""
        feasible = [n for n, e in self.entries.items() if e is not None]
        if not feasible:
            raise ContractViolation("no client count is servable")
        return max(feasible)


@dataclass(frozen=True)
class ThresholdSwitchPolicy:
    """Rate-threshold adaptive replication (Fig. 6).

    Above ``rate_high_per_s`` the policy demands active replication
    (it sustains higher arrival rates); below ``rate_low_per_s`` it
    returns to warm passive (it is cheaper).  The gap between the two
    thresholds is the hysteresis band.
    """

    rate_high_per_s: float
    rate_low_per_s: float
    high_style: ReplicationStyle = ReplicationStyle.ACTIVE
    low_style: ReplicationStyle = ReplicationStyle.WARM_PASSIVE

    def __post_init__(self) -> None:
        if self.rate_low_per_s > self.rate_high_per_s:
            raise PolicyError("low threshold must not exceed high")
        if self.rate_low_per_s < 0:
            raise PolicyError("thresholds must be non-negative")

    def decide(self, current: ReplicationStyle,
               rate_per_s: float) -> Optional[ReplicationStyle]:
        """Return the style to switch to, or None to stay put."""
        if rate_per_s > self.rate_high_per_s and current is not self.high_style:
            return self.high_style
        if rate_per_s < self.rate_low_per_s and current is not self.low_style:
            return self.low_style
        return None
