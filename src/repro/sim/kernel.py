"""Discrete-event simulation kernel.

The kernel is a classic event-heap scheduler with a simulated clock
measured in **microseconds** (the unit the paper reports all latencies
in).  Everything else in the library — the network substrate, the group
communication system, the replicator — is built as callbacks scheduled
on a :class:`Simulator`.

Determinism
-----------
A simulation run is fully determined by its seed: the kernel owns a
single :class:`random.Random` instance and ties are broken by a
monotonically increasing sequence number, so two runs with the same
seed and the same scenario produce identical traces.  This property is
load-bearing for the paper's architecture: adaptation decisions are
"made in a distributed manner by a deterministic algorithm" over
replicated state (Section 3.1), and the tests assert reproducibility.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.trace import TraceLog


class _PolicySequence:
    """Sequence-number source for policy-perturbed scheduling.

    Replaces the kernel's plain ``itertools.count`` when a scheduler
    policy is installed: each draw is a ``(policy.tie_break(), n)``
    tuple, so events at equal simulated times sort by the policy's
    tie-break value first while the monotone counter still guarantees
    a total order.  A class (rather than a generator) so the whole
    simulator graph stays deep-copyable for :mod:`repro.sim.snapshot`.
    """

    __slots__ = ("policy", "n")

    def __init__(self, policy: Any, n: int = 0):
        self.policy = policy
        self.n = n

    def __iter__(self) -> "_PolicySequence":
        return self

    def __next__(self) -> tuple:
        n = self.n
        self.n = n + 1
        return (self.policy.tie_break(), n)


class EventHandle:
    """A cancellable reference to a scheduled event.

    Returned by :meth:`Simulator.schedule`; calling :meth:`cancel`
    prevents the callback from firing (cancelling an already-fired or
    already-cancelled event is a harmless no-op).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple,
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing."""
        if self.cancelled or self.callback is _fired:
            return
        self.cancelled = True
        # Drop references eagerly so cancelled timers do not pin large
        # payloads in the heap until their scheduled time.
        self.callback = _noop
        self.args = ()
        if self.sim is not None:
            self.sim._note_cancelled()

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not _fired

    def __lt__(self, other: "EventHandle") -> bool:
        # Branchy compare instead of building two tuples: this runs
        # once per heap sift step, the most-called function of a run.
        st = self.time
        ot = other.time
        if st != ot:
            return st < ot
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.1f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    """Placeholder callback for cancelled events."""


def _fired(*_args: Any) -> None:
    """Sentinel marking an event that has already been dispatched."""


class NullTelemetry:
    """Disabled trace recorder: the default for every simulator.

    Mirrors the interface of :class:`repro.telemetry.spans.Telemetry`
    as pure no-ops.  It lives here — dependency-free — so the kernel
    never imports the telemetry package; instrumented code guards on
    ``sim.telemetry.enabled`` and pays one attribute load plus one
    branch when telemetry is off.
    """

    enabled = False
    spans: tuple = ()
    metrics = None
    dropped = 0
    open_spans = 0

    def start_trace(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real recorder would open a root span."""
        return None

    def begin(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real recorder would open a child span."""
        return None

    def begin_transit(self, ctx: Any = None, *_args: Any,
                      **_kwargs: Any) -> tuple:
        """No-op; returns ``(None, ctx)`` so the context passes through unchanged."""
        return None, ctx

    def emit(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real recorder would record a charged span."""
        return None

    def end(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real recorder would close the span."""
        return None

    def finish_inflight(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real recorder would close the transit span."""
        return None

    def finish_trace(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real recorder would close the root span."""
        return None

    def traces(self) -> dict:
        """Return an empty mapping: nothing is ever recorded."""
        return {}

    def __len__(self) -> int:
        return 0


#: Shared stateless no-op recorder.
NULL_TELEMETRY = NullTelemetry()


class NullJournal:
    """Disabled dependability-event journal: the default recorder.

    Mirrors the interface of :class:`repro.journal.events.Journal` as
    pure no-ops, the same arrangement as :class:`NullTelemetry`: it
    lives here — dependency-free — so the kernel never imports the
    journal package, and instrumented code pays one attribute load
    plus one ``.enabled`` branch when journaling is off.
    """

    enabled = False
    events: tuple = ()
    dropped = 0

    def record(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real journal would append a JournalEvent."""
        return None

    def flight_recorder(self, _host: str) -> tuple:
        """Return an empty per-host ring: nothing is ever recorded."""
        return ()

    def of_kind(self, _prefix: str) -> tuple:
        """Return no events: nothing is ever recorded."""
        return ()

    def truncated_rings(self) -> dict:
        """Return no truncation: nothing is ever recorded or evicted."""
        return {}

    def __len__(self) -> int:
        return 0


#: Shared stateless no-op journal.
NULL_JOURNAL = NullJournal()


class NullHistory:
    """Disabled operation-history recorder: the default for every
    simulator.

    Mirrors the interface of
    :class:`repro.check.history.HistoryRecorder` as pure no-ops, the
    same arrangement as :class:`NullTelemetry`: it lives here —
    dependency-free — so the kernel never imports the checker package,
    and the ORB client pays one attribute load plus one ``.enabled``
    branch per invocation when history capture is off.
    """

    enabled = False
    operations: tuple = ()

    def invoked(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real recorder would open an operation interval."""
        return None

    def completed(self, *_args: Any, **_kwargs: Any) -> None:
        """No-op; a real recorder would close the operation interval."""
        return None

    def __len__(self) -> int:
        return 0


#: Shared stateless no-op history recorder.
NULL_HISTORY = NullHistory()


#: Heap compaction trigger: once at least this many cancelled entries
#: sit in the heap *and* they outnumber the live ones, the heap is
#: rebuilt without them.  Timer-heavy protocols (failure detectors
#: rearming on every heartbeat) otherwise let cancelled timers
#: dominate the heap and tax every push/pop with dead weight.
COMPACT_MIN_CANCELLED = 512


class Simulator:
    """Event-heap simulator with a microsecond clock.

    Parameters
    ----------
    seed:
        Seed for the kernel's random number generator.  All stochastic
        behaviour in the library (network jitter, loss, workload
        arrivals) draws from :attr:`rng`, so a run is reproducible from
        its seed alone.
    trace:
        Optional :class:`TraceLog`; a fresh one is created by default.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceLog] = None):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self.seed = seed
        self.trace = trace if trace is not None else TraceLog()
        #: Trace recorder; the no-op by default.  The testbed swaps in
        #: a :class:`repro.telemetry.Telemetry` when calibration says
        #: so.  Recording is observation-only (never schedules events),
        #: so results are identical whichever recorder is attached.
        self.telemetry: Any = NULL_TELEMETRY
        #: Dependability-event journal; the no-op by default.  The
        #: testbed swaps in a :class:`repro.journal.Journal` when
        #: calibration says so.  Journaling is observation-only (never
        #: schedules events), so results are identical either way.
        self.journal: Any = NULL_JOURNAL
        #: Client-observed operation history; the no-op by default.
        #: The checker attaches a
        #: :class:`repro.check.history.HistoryRecorder` for
        #: linearizability verification.  Recording is
        #: observation-only, so results are identical either way.
        self.history: Any = NULL_HISTORY
        #: Scheduling policy installed via :meth:`set_scheduler_policy`
        #: (None by default).  The network layer consults it for
        #: bounded extra message delays; same-timestamp tie-breaking is
        #: folded into the sequence counter below.
        self.scheduler_policy: Any = None
        self._heap: List[EventHandle] = []
        self._seq = itertools.count()
        self._pids = itertools.count(1)
        self._running = False
        self._events_dispatched = 0
        # Live bookkeeping: pending (scheduled, neither fired nor
        # cancelled) and cancelled-but-still-heaped counts, so
        # ``pending_events`` is O(1) and compaction knows when the
        # heap is mostly dead weight.
        self._pending = 0
        self._cancelled = 0

    def allocate_pid(self) -> int:
        """Next process id.  Per-simulator (not interpreter-global) so
        two same-seed runs name their processes identically — member
        ids embed the pid, and the journal's byte-identical-JSONL
        guarantee depends on it."""
        return next(self._pids)

    def set_scheduler_policy(self, policy: Any) -> None:
        """Install a scheduling policy that perturbs same-timestamp
        event ordering (and, via the network layer, message delays).

        The policy is duck-typed (see
        :class:`repro.check.policies.SchedulerPolicy`): it must expose
        ``tie_break() -> int`` — consulted once per scheduled event —
        and ``message_delay(wire_bytes) -> float``.  The hook works by
        replacing the kernel's plain sequence counter with tuples of
        ``(tie_break(), n)``: events at equal simulated times sort by
        the policy's tie-break value first, with the monotone counter
        still guaranteeing a total order.  With no policy installed the
        scheduling code path is byte-for-byte the unmodified original,
        so default-policy runs stay identical to pre-hook kernels.

        Must be called before any event is scheduled: mixing plain-int
        and tuple sequence numbers in one heap would make handles
        incomparable.
        """
        if self._heap:
            raise SimulationError(
                "scheduler policy must be installed before any event "
                "is scheduled")
        self.scheduler_policy = policy
        self._seq = _PolicySequence(policy)

    def swap_scheduler_policy(self, policy: Any) -> None:
        """Replace the installed scheduling policy mid-run, keeping
        the monotone half of the sequence counter.

        This is the snapshot/fork arming point: a warmed prefix runs
        under the identity policy (tie-break 0 for every event, so the
        prefix is byte-identical no matter which walk will follow),
        gets captured once, and each fork swaps in its own walk policy
        before the divergent suffix.  Only valid when a policy was
        installed via :meth:`set_scheduler_policy` before any event —
        the heap must already be ordered by ``(tie, n)`` tuples.
        """
        if not isinstance(self._seq, _PolicySequence):
            raise SimulationError(
                "swap_scheduler_policy requires a policy installed "
                "via set_scheduler_policy before any event")
        self.scheduler_policy = policy
        self._seq.policy = policy

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        if not callable(callback):
            raise SimulationError(f"callback is not callable: {callback!r}")
        # Inlined schedule_at: delay >= 0 already implies time >= now.
        handle = EventHandle(self.now + delay, next(self._seq),
                             callback, args, self)
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}")
        if not callable(callback):
            raise SimulationError(f"callback is not callable: {callback!r}")
        handle = EventHandle(time, next(self._seq), callback, args, self)
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def schedule_fast(self, delay: float, callback: Callable[..., None],
                      *args: Any) -> EventHandle:
        """Hot-path twin of :meth:`schedule` that skips validation.

        For internal callers (network transmission, CPU completion,
        link timers, local IPC) whose delays come from validated
        calibrations and are provably non-negative.  Scheduling order,
        tie-breaking and the resulting event time are bit-identical to
        :meth:`schedule` — only the redundant checks are gone.
        """
        handle = EventHandle(self.now + delay, next(self._seq),
                             callback, args, self)
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def schedule_at_fast(self, time: float, callback: Callable[..., None],
                         *args: Any) -> EventHandle:
        """Hot-path twin of :meth:`schedule_at` (see
        :meth:`schedule_fast`); ``time`` must be ``>= now``."""
        handle = EventHandle(time, next(self._seq), callback, args, self)
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def _note_cancelled(self) -> None:
        """A pending handle was cancelled: update the live counters
        and compact the heap when cancelled entries dominate it."""
        self._pending -= 1
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        heap = self._heap
        if cancelled >= COMPACT_MIN_CANCELLED and 2 * cancelled > len(heap):
            # Rebuild in place (run() holds an alias to the list) with
            # only live handles.  heapify restores the invariant; the
            # dispatch order is unchanged because the (time, seq)
            # ordering is total.
            heap[:] = [h for h in heap if not h.cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next event.

        Returns False when the event queue is exhausted.
        """
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle.cancelled:
                self._cancelled -= 1
                continue
            if handle.time < self.now:
                raise SimulationError(
                    f"event at t={handle.time} is in the past (now={self.now})")
            self.now = handle.time
            callback, args = handle.callback, handle.args
            handle.callback = _fired
            handle.args = ()
            self._pending -= 1
            self._events_dispatched += 1
            callback(*args)
            return True
        return False

    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` events have been dispatched.

        Returns the simulated time at which the run stopped.  When the
        run stops because of ``until``, the clock is advanced to
        ``until`` even if no event fired exactly there, so that
        consecutive ``run`` calls see a monotone clock.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        # The dispatch loop is the simulator's hottest code: locals are
        # hoisted and the single-event :meth:`step` is inlined so one
        # event costs one heap pop plus the callback.
        heap = self._heap
        pop = heapq.heappop
        limitless = max_events is None
        dispatched = 0
        try:
            while heap:
                # The budget check runs before *any* pop so a cancelled
                # head can neither consume budget nor be consumed past
                # it (a popped-cancelled head previously slipped
                # through without re-checking ``max_events``).
                if not limitless and dispatched >= max_events:
                    break
                head = heap[0]
                if head.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                if head.time > until:
                    break
                pop(heap)
                self.now = head.time
                callback, args = head.callback, head.args
                head.callback = _fired
                head.args = ()
                self._pending -= 1
                self._events_dispatched += 1
                dispatched += 1
                callback(*args)
        finally:
            self._running = False
        if until is not math.inf and until > self.now:
            self.now = until
        return self.now

    def run_until_idle(self) -> float:
        """Run until no events remain; returns the final clock value."""
        return self.run()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1):
        maintained live on schedule/cancel/dispatch rather than by
        scanning the heap)."""
        return self._pending

    @property
    def events_dispatched(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_dispatched

    def __repr__(self) -> str:
        return (f"<Simulator now={self.now:.1f}us "
                f"pending={self.pending_events} seed={self.seed}>")
