"""Simulator snapshots: capture a warmed run once, fork it many times.

Every campaign trial and every explored schedule replays the same
deterministic setup + warmup prefix before anything interesting
happens.  A :class:`SimSnapshot` freezes the complete simulator object
graph at that point — event heap (including cancelled entries and the
compaction counters), kernel RNG state, sequence counter, clock,
actors/hosts, network links and loss models, GCS daemon caches,
journal flight-recorder rings, telemetry registries, and
scheduler-policy decision state — so consumers pay the prefix once and
:meth:`SimSnapshot.fork` out fresh, fully independent copies whose
subsequent execution is byte-identical to a fresh run reaching the
same point.

Why not plain :func:`copy.deepcopy`
-----------------------------------
Two reasons.  Correctness: ``deepcopy`` treats plain functions as
*atomic*, so a copied event heap would still hold the original
``Actor`` timer closures, ``GcsDaemon`` link lambdas and
protocol-mutation patches — every fork would mutate the actors of the
snapshot it came from.  Closures are instead rebuilt cell by cell
(through the memo, so recursive closures like periodic timers resolve
to their own clone), and default arguments that smuggle object
references (the ``MUTATIONS`` patches bind replicators that way) are
deep-copied.

Speed: a fork is only worth taking if it is cheaper than re-running
the prefix, and ``deepcopy``'s generic ``__reduce_ex__`` machinery
costs more per object than the warmup it would save.  The copier here
dispatches on exact type for the handful of shapes the simulator
graph is made of (dicts, lists, plain and ``__slots__`` instances,
bound methods, RNGs), shares known-immutable leaves (frozen
calibrations, :class:`Endpoint`, :class:`TraceRecord`, the ``NULL_*``
singletons), and falls back to :func:`copy.deepcopy` — with the same
memo — for anything it does not recognise.
"""

from __future__ import annotations

import copy
import random
import types
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator

_BoundMethod = types.MethodType
_Function = types.FunctionType


def _copy_function(func: types.FunctionType, memo: dict) -> Any:
    """Closure-aware copy of a plain function.

    Module-level functions (no closure, no bound defaults, no attrs)
    are shared.  Anything else is rebuilt: a clone with empty cells is
    registered in the memo *first* so self-referential closures — a
    periodic timer's ``fire`` reschedules ``fire`` itself — resolve to
    the clone, then the cells and defaults are filled with copies.
    """
    if (func.__closure__ is None and func.__defaults__ is None
            and func.__kwdefaults__ is None and not func.__dict__):
        return func
    cells = tuple(types.CellType() for _ in (func.__closure__ or ()))
    clone = types.FunctionType(
        func.__code__, func.__globals__, func.__name__, None,
        cells or None)
    clone.__qualname__ = func.__qualname__
    memo[id(func)] = clone
    if func.__defaults__ is not None:
        clone.__defaults__ = tuple(
            _copy(value, memo) for value in func.__defaults__)
    if func.__kwdefaults__ is not None:
        clone.__kwdefaults__ = {
            key: _copy(value, memo)
            for key, value in func.__kwdefaults__.items()}
    if func.__dict__:
        clone.__dict__.update(
            (key, _copy(value, memo))
            for key, value in func.__dict__.items())
    for cell, orig in zip(cells, func.__closure__ or ()):
        try:
            value = orig.cell_contents
        except ValueError:      # pragma: no cover - empty cell
            continue
        cell.cell_contents = _copy(value, memo)
    return clone


def _copy_dict(obj: dict, memo: dict) -> dict:
    out: dict = {}
    memo[id(obj)] = out
    for key, value in obj.items():
        out[key] = _copy(value, memo)
    return out


def _copy_list(obj: list, memo: dict) -> list:
    out: list = []
    memo[id(obj)] = out
    append = out.append
    for value in obj:
        append(_copy(value, memo))
    return out


def _copy_tuple(obj: tuple, memo: dict) -> tuple:
    # Tuples cannot be memo-registered before their elements exist;
    # self-referential tuples cannot be built in Python anyway.
    out = tuple(_copy(value, memo) for value in obj)
    memo[id(obj)] = out
    return out


def _copy_set(obj: set, memo: dict) -> set:
    out = {_copy(value, memo) for value in obj}
    memo[id(obj)] = out
    return out


def _copy_frozenset(obj: frozenset, memo: dict) -> frozenset:
    out = frozenset(_copy(value, memo) for value in obj)
    memo[id(obj)] = out
    return out


def _copy_deque(obj: deque, memo: dict) -> deque:
    out: deque = deque(maxlen=obj.maxlen)
    memo[id(obj)] = out
    append = out.append
    for value in obj:
        append(_copy(value, memo))
    return out


def _copy_ordered_dict(obj: OrderedDict, memo: dict) -> OrderedDict:
    out: OrderedDict = OrderedDict()
    memo[id(obj)] = out
    for key, value in obj.items():
        out[key] = _copy(value, memo)
    return out


def _copy_method(obj: types.MethodType, memo: dict) -> types.MethodType:
    out = _BoundMethod(obj.__func__, _copy(obj.__self__, memo))
    memo[id(obj)] = out
    return out


def _copy_random(obj: random.Random, memo: dict) -> random.Random:
    out = random.Random()
    out.setstate(obj.getstate())
    memo[id(obj)] = out
    return out


def _fallback(obj: Any, memo: dict) -> Any:
    """Hand an unrecognised object to :func:`copy.deepcopy`, sharing
    the memo so cross-references stay consistent.  The function/atomic
    handlers are patched into deepcopy's dispatch for the duration of
    the snapshot operation (see :func:`snapshot_deepcopy`), so even
    fallback subtrees copy closures correctly."""
    return copy.deepcopy(obj, memo)


def _slot_names(cls: type) -> tuple:
    """All ``__slots__`` names in ``cls``'s MRO (cached by caller)."""
    names = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__"):
                names.append(name)
    return tuple(names)


class _InstanceCopier:
    """Per-class instance copier: plain ``__dict__`` instances and
    ``__slots__`` instances (frozen dataclasses included — slots are
    filled via ``object.__setattr__``)."""

    __slots__ = ("cls", "slots")

    def __init__(self, cls: type):
        self.cls = cls
        self.slots = _slot_names(cls)

    def __call__(self, obj: Any, memo: dict) -> Any:
        cls = self.cls
        out = object.__new__(cls)
        memo[id(obj)] = out
        for name in self.slots:
            try:
                value = getattr(obj, name)
            except AttributeError:
                continue
            object.__setattr__(out, name, _copy(value, memo))
        d = getattr(obj, "__dict__", None)
        if d:
            # Fill via setattr, NOT ``out.__dict__.update``: touching
            # ``__dict__`` on the clone materializes the managed dict
            # and permanently de-optimizes CPython 3.11's inline-values
            # attribute storage, making every later attribute access on
            # the forked object slower.  Insertion order mirrors the
            # source, so clones keep the class's shared-keys layout.
            setattr_ = object.__setattr__
            for key, value in d.items():
                setattr_(out, key, _copy(value, memo))
        return out


def _share(obj: Any, _memo: dict) -> Any:
    return obj


#: Exact-type dispatch table.  Grown lazily: unknown plain classes
#: (no __deepcopy__/__reduce__ overrides, not an exotic built-in) get
#: an :class:`_InstanceCopier`; everything else falls back to
#: :func:`copy.deepcopy`.
_DISPATCH: Dict[type, Callable[[Any, dict], Any]] = {
    dict: _copy_dict,
    list: _copy_list,
    tuple: _copy_tuple,
    set: _copy_set,
    frozenset: _copy_frozenset,
    deque: _copy_deque,
    OrderedDict: _copy_ordered_dict,
    types.MethodType: _copy_method,
    types.FunctionType: _copy_function,
    random.Random: _copy_random,
    str: _share,
    int: _share,
    float: _share,
    bool: _share,
    bytes: _share,
    complex: _share,
    type(None): _share,
    type(NotImplemented): _share,
    type(...): _share,
    type: _share,
    types.BuiltinFunctionType: _share,
    types.ModuleType: _share,
    range: _share,
}


def _learn(cls: type) -> Callable[[Any, dict], Any]:
    """Pick a copier for a class seen for the first time."""
    if (cls.__module__ in ("builtins", "itertools", "collections")
            or "__deepcopy__" in cls.__dict__
            or "__copy__" in cls.__dict__):
        handler: Callable[[Any, dict], Any] = _fallback
    else:
        for klass in cls.__mro__[:-1]:
            if ("__reduce__" in klass.__dict__
                    or "__reduce_ex__" in klass.__dict__
                    or "__getstate__" in klass.__dict__
                    or "__deepcopy__" in klass.__dict__):
                handler = _fallback
                break
        else:
            handler = _InstanceCopier(cls)
    _DISPATCH[cls] = handler
    return handler


def _copy(obj: Any, memo: dict) -> Any:
    cls = obj.__class__
    handler = _DISPATCH.get(cls)
    if handler is _share:
        return obj
    out = memo.get(id(obj))
    if out is not None:
        return out
    if handler is None:
        handler = _learn(cls)
        if handler is _share:       # pragma: no cover - defensive
            return obj
    return handler(obj, memo)


def _register_atomic_types() -> None:
    """Mark known-immutable leaf types as shared (not copied).

    Everything here is immutable after construction: frozen dataclass
    calibrations, network endpoints, trace records (append-only, their
    payload dict is never touched post-record), and the stateless
    ``Null*`` recorders.  Sharing them is a large part of what makes a
    fork cheaper than re-running the prefix.  Imported lazily to keep
    :mod:`repro.sim` free of upward package dependencies.
    """
    from repro.net.frame import Endpoint
    from repro.sim.config import (
        GcsCalibration,
        HostCalibration,
        InterposeCalibration,
        JournalConfig,
        NetworkCalibration,
        OrbCalibration,
        ReplicationCalibration,
        SubstrateCalibration,
        TelemetryConfig,
    )
    from repro.sim.kernel import NullHistory, NullJournal, NullTelemetry
    from repro.sim.trace import TraceRecord

    for atype in (Endpoint, TraceRecord, NullHistory, NullJournal,
                  NullTelemetry, GcsCalibration, HostCalibration,
                  InterposeCalibration, JournalConfig,
                  NetworkCalibration, OrbCalibration,
                  ReplicationCalibration, SubstrateCalibration,
                  TelemetryConfig):
        _DISPATCH[atype] = _share


_atomic_registered = False


def _deepcopy_function_dispatch(func: types.FunctionType,
                                memo: dict) -> Any:
    """Adapter installed into ``copy._deepcopy_dispatch`` during a
    snapshot copy so functions reached through fallback subtrees are
    still closure-copied."""
    return _copy_function(func, memo)


def snapshot_deepcopy(obj: Any) -> Any:
    """Deep-copy ``obj`` with the snapshot rules (closure rebuilding,
    immutable-leaf sharing, fast exact-type dispatch).  The building
    block of :class:`SimSnapshot`; exposed for tests and ad-hoc
    forking."""
    global _atomic_registered
    if not _atomic_registered:
        _register_atomic_types()
        _atomic_registered = True
    dispatch = copy._deepcopy_dispatch
    had_function = types.FunctionType in dispatch
    saved = dispatch.get(types.FunctionType)
    dispatch[types.FunctionType] = _deepcopy_function_dispatch
    try:
        return _copy(obj, {})
    except TypeError as exc:
        raise SimulationError(
            f"object graph is not snapshot-copyable: {exc}") from exc
    finally:
        if had_function:
            dispatch[types.FunctionType] = saved
        else:
            dispatch.pop(types.FunctionType, None)


def _find_simulator(obj: Any, depth: int = 3) -> Optional[Simulator]:
    """Best-effort search for the :class:`Simulator` inside ``roots``
    (direct value, a ``sim`` attribute, or one level of container)."""
    if isinstance(obj, Simulator):
        return obj
    if depth <= 0:
        return None
    sim = getattr(obj, "sim", None)
    if isinstance(sim, Simulator):
        return sim
    values: Any = ()
    if isinstance(obj, dict):
        values = obj.values()
    elif isinstance(obj, (list, tuple)):
        values = obj
    for value in values:
        found = _find_simulator(value, depth - 1)
        if found is not None:
            return found
    return None


class SimSnapshot:
    """A frozen, forkable copy of a warmed simulation.

    ``capture`` deep-copies ``roots`` (any object graph reaching the
    simulator — typically a dict of testbed/replicas/client) into a
    private frozen graph that shares nothing mutable with the live
    run; each ``fork`` deep-copies the frozen graph again, so forks
    are independent of the snapshot and of each other.  The snapshot
    itself is never executed.
    """

    __slots__ = ("_frozen", "label", "forks")

    def __init__(self, frozen: Any, label: str = ""):
        self._frozen = frozen
        self.label = label
        self.forks = 0

    @classmethod
    def capture(cls, roots: Any, sim: Optional[Simulator] = None,
                label: str = "") -> "SimSnapshot":
        """Freeze ``roots`` into a snapshot.

        ``sim`` (located automatically inside ``roots`` when omitted)
        must not be mid-:meth:`~repro.sim.kernel.Simulator.run`: a
        snapshot taken while the dispatch loop holds popped-but-live
        state would not replay identically.
        """
        if sim is None:
            sim = _find_simulator(roots)
        if sim is not None and sim._running:
            raise SimulationError(
                "cannot capture a snapshot while Simulator.run() is "
                "active")
        return cls(snapshot_deepcopy(roots), label=label)

    def fork(self) -> Any:
        """Return an independent deep copy of the captured roots."""
        self.forks += 1
        return snapshot_deepcopy(self._frozen)

    def __repr__(self) -> str:
        return f"<SimSnapshot label={self.label!r} forks={self.forks}>"
