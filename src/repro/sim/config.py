"""Calibration constants for the simulated substrate.

The paper's evaluation ran on seven 900 MHz Pentium III machines on a
LAN, using Spread 3.17.01 and TAO 1.4.  Figure 3 breaks the measured
round-trip of a micro-benchmark request into four components:

====================  ========
Component             Cost
====================  ========
Application            15 µs
ORB                   398 µs
Group communication   620 µs
Replicator            154 µs
====================  ========

The defaults below are chosen so that the *simulated* substrate
reproduces those component costs for the same one-client /
one-replica configuration, which anchors every other experiment.
All values are dataclass fields, so a benchmark or test can build a
scenario with different hardware assumptions by passing a modified
:class:`SubstrateCalibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkCalibration:
    """Latency/throughput model of the switched LAN.

    ``propagation_us`` covers wire + switch + kernel network-stack
    traversal for one frame hop; ``bandwidth_bytes_per_us`` is the link
    rate (100 Mb/s Ethernet ≈ 12.5 bytes/µs); ``jitter_us`` is the
    half-width of the uniform jitter added to each hop.
    """

    propagation_us: float = 120.0
    bandwidth_bytes_per_us: float = 12.5
    jitter_us: float = 12.0
    local_loopback_us: float = 6.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid fields."""
        if self.propagation_us < 0 or self.jitter_us < 0:
            raise ConfigurationError("network delays must be non-negative")
        if self.bandwidth_bytes_per_us <= 0:
            raise ConfigurationError("bandwidth must be positive")


@dataclass(frozen=True)
class OrbCalibration:
    """Cost model of the miniature ORB (stands in for TAO 1.4).

    One round trip crosses the ORB four times (client marshal, server
    demarshal, server marshal, client demarshal), so per-crossing costs
    are roughly a quarter of the paper's 398 µs ORB share.
    """

    marshal_fixed_us: float = 94.0
    marshal_per_byte_us: float = 0.017
    demarshal_fixed_us: float = 79.0
    demarshal_per_byte_us: float = 0.014
    dispatch_us: float = 42.0
    giop_header_bytes: int = 48

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid fields."""
        for name in ("marshal_fixed_us", "marshal_per_byte_us",
                     "demarshal_fixed_us", "demarshal_per_byte_us",
                     "dispatch_us"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class GcsCalibration:
    """Cost model of the group-communication daemons (stands in for
    Spread 3.17.01).

    ``daemon_processing_us`` is charged each time a daemon handles a
    message; reliable/agreed grades route via the group's sequencer
    daemon, adding hops — which is why group communication dominates
    the paper's round-trip breakdown (620 µs of 1187 µs).
    """

    daemon_processing_us: float = 77.0
    ordering_us: float = 30.0
    local_ipc_us: float = 45.0
    header_bytes: int = 42
    heartbeat_interval_us: float = 100_000.0
    failure_timeout_us: float = 350_000.0
    retransmit_timeout_us: float = 4_000.0
    history_limit: int = 4096
    #: Use the adaptive (inter-arrival statistics) failure detector
    #: instead of the fixed timeout; tolerant of gradual timing
    #: degradation (the paper's "performance and timing faults").
    adaptive_failure_detection: bool = False
    #: Primary-partition membership: a daemon that can only reach a
    #: minority of its current view *wedges* (stops serving, buffers
    #: client operations) instead of installing a concurrent
    #: fully-operational view, then rejoins and merges on heal.  Off
    #: by default — the classic partitionable-membership behaviour is
    #: what every pre-partition experiment calibrated against.
    primary_partition: bool = False
    #: While wedged, how often a daemon probes its unreachable peers
    #: with rejoin requests so a healed partition merges promptly.
    rejoin_probe_interval_us: float = 200_000.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid fields."""
        if self.failure_timeout_us <= self.heartbeat_interval_us:
            raise ConfigurationError(
                "failure timeout must exceed the heartbeat interval")
        if self.history_limit < 16:
            raise ConfigurationError("history_limit too small to be useful")
        if self.rejoin_probe_interval_us <= 0:
            raise ConfigurationError(
                "rejoin probe interval must be positive")


@dataclass(frozen=True)
class InterposeCalibration:
    """Cost of the library-interposition layer (the replicator's
    system-call wrappers), per intercepted call."""

    intercept_us: float = 18.0
    redirect_us: float = 32.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid fields."""
        if self.intercept_us < 0 or self.redirect_us < 0:
            raise ConfigurationError("interposition costs must be >= 0")


@dataclass(frozen=True)
class ReplicationCalibration:
    """Cost model of the replication mechanisms themselves."""

    duplicate_check_us: float = 12.0
    logging_us: float = 14.0
    checkpoint_fixed_us: float = 340.0
    checkpoint_per_byte_us: float = 0.1
    checkpoint_per_target_us: float = 210.0
    state_apply_fixed_us: float = 80.0
    state_apply_per_byte_us: float = 0.02
    election_us: float = 35.0
    spawn_replica_us: float = 250_000.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid fields."""
        if self.checkpoint_per_byte_us < 0 or self.state_apply_per_byte_us < 0:
            raise ConfigurationError("per-byte costs must be non-negative")


@dataclass(frozen=True)
class HostCalibration:
    """CPU model: a 900 MHz Pentium III executes ``speed = 1.0``;
    service demands elsewhere in the library are expressed in µs on
    this reference machine and scaled by the host's speed."""

    speed: float = 1.0
    context_switch_us: float = 5.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid fields."""
        if self.speed <= 0:
            raise ConfigurationError("CPU speed must be positive")


@dataclass(frozen=True)
class TelemetryConfig:
    """The single switch for the observability layer.

    Off by default: the simulator keeps its no-op recorder and the
    instrumentation sites reduce to one guarded branch.  When enabled,
    the testbed attaches a :class:`repro.telemetry.Telemetry` recorder
    capped at ``max_spans`` (further spans are counted as dropped, not
    recorded, so long campaigns cannot exhaust memory).  Recording
    adds **no simulated time** either way.
    """

    enabled: bool = False
    max_spans: int = 200_000

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid fields."""
        if self.max_spans < 1:
            raise ConfigurationError("max_spans must be positive")


@dataclass(frozen=True)
class JournalConfig:
    """Switch for the dependability event journal.

    Off by default: the simulator keeps its no-op journal and every
    instrumentation site reduces to one guarded branch.  When enabled,
    the testbed attaches a :class:`repro.journal.Journal`: a global
    collector capped at ``max_events`` plus a per-host "flight
    recorder" ring of the last ``ring_size`` events.  Journaling adds
    **no simulated time** either way, so simulated results are
    byte-identical on or off.
    """

    enabled: bool = False
    ring_size: int = 256
    max_events: int = 100_000

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid fields."""
        if self.ring_size < 1:
            raise ConfigurationError("ring_size must be positive")
        if self.max_events < 1:
            raise ConfigurationError("max_events must be positive")


@dataclass(frozen=True)
class SubstrateCalibration:
    """Bundle of all substrate cost models with paper-anchored defaults."""

    network: NetworkCalibration = field(default_factory=NetworkCalibration)
    orb: OrbCalibration = field(default_factory=OrbCalibration)
    gcs: GcsCalibration = field(default_factory=GcsCalibration)
    interpose: InterposeCalibration = field(default_factory=InterposeCalibration)
    replication: ReplicationCalibration = field(
        default_factory=ReplicationCalibration)
    host: HostCalibration = field(default_factory=HostCalibration)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    journal: JournalConfig = field(default_factory=JournalConfig)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any invalid field."""
        self.network.validate()
        self.orb.validate()
        self.gcs.validate()
        self.interpose.validate()
        self.replication.validate()
        self.host.validate()
        self.telemetry.validate()
        self.journal.validate()

    def with_overrides(self, **sections) -> "SubstrateCalibration":
        """Return a copy with whole sections replaced, e.g.
        ``cal.with_overrides(network=NetworkCalibration(loss...))``."""
        return replace(self, **sections)


#: Paper Figure 3 component costs (µs), used by calibration tests and
#: the fig3 benchmark to state provenance.
PAPER_FIG3_BREAKDOWN: Dict[str, float] = {
    "application": 15.0,
    "orb": 398.0,
    "group_communication": 620.0,
    "replicator": 154.0,
}

#: Paper Section 4.3 constraint constants (scalability knob).
PAPER_LATENCY_LIMIT_US: float = 7000.0
PAPER_BANDWIDTH_LIMIT_MBPS: float = 3.0
PAPER_COST_WEIGHT: float = 0.5


def default_calibration() -> SubstrateCalibration:
    """The paper-anchored default calibration."""
    cal = SubstrateCalibration()
    cal.validate()
    return cal
