"""Discrete-event simulation substrate.

Public surface:

- :class:`Simulator` — event-heap kernel with a microsecond clock
- :class:`Host`, :class:`Process`, :class:`Cpu` — machine model
- :class:`Actor` — timer-managed protocol component
- :class:`TraceLog`, :class:`TraceRecord` — structured run trace
- :class:`SubstrateCalibration` and friends — paper-anchored cost models
"""

from repro.sim.actor import Actor
from repro.sim.config import (
    GcsCalibration,
    HostCalibration,
    InterposeCalibration,
    JournalConfig,
    NetworkCalibration,
    OrbCalibration,
    PAPER_BANDWIDTH_LIMIT_MBPS,
    PAPER_COST_WEIGHT,
    PAPER_FIG3_BREAKDOWN,
    PAPER_LATENCY_LIMIT_US,
    ReplicationCalibration,
    SubstrateCalibration,
    TelemetryConfig,
    default_calibration,
)
from repro.sim.host import Cpu, Host, Process
from repro.sim.kernel import (
    NULL_HISTORY,
    NULL_JOURNAL,
    NULL_TELEMETRY,
    EventHandle,
    NullHistory,
    NullJournal,
    NullTelemetry,
    Simulator,
)
from repro.sim.snapshot import SimSnapshot, snapshot_deepcopy
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Actor",
    "Cpu",
    "EventHandle",
    "GcsCalibration",
    "Host",
    "HostCalibration",
    "InterposeCalibration",
    "JournalConfig",
    "NULL_HISTORY",
    "NULL_JOURNAL",
    "NULL_TELEMETRY",
    "NetworkCalibration",
    "NullHistory",
    "NullJournal",
    "NullTelemetry",
    "OrbCalibration",
    "PAPER_BANDWIDTH_LIMIT_MBPS",
    "PAPER_COST_WEIGHT",
    "PAPER_FIG3_BREAKDOWN",
    "PAPER_LATENCY_LIMIT_US",
    "Process",
    "ReplicationCalibration",
    "SimSnapshot",
    "Simulator",
    "snapshot_deepcopy",
    "SubstrateCalibration",
    "TelemetryConfig",
    "TraceLog",
    "TraceRecord",
    "default_calibration",
]
