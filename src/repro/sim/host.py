"""Hosts, CPUs and processes.

A :class:`Host` models one machine of the paper's testbed: a single
CPU (jobs serialize), a network attachment point, and a set of
:class:`Process` instances.  Crashing a host kills every process on it
(the paper's node-level crash fault); a process can also crash alone
(process-level crash fault).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.config import HostCalibration
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class Cpu:
    """A single serializing CPU.

    Jobs are executed FIFO; a job submitted while the CPU is busy
    starts when the CPU frees up.  Service demands are expressed in µs
    on the reference machine and divided by ``speed``.  The busy-time
    integral supports the monitoring subsystem's CPU-load metric.
    """

    def __init__(self, sim: Simulator, calibration: HostCalibration):
        self._sim = sim
        self._cal = calibration
        self._ready_at = 0.0
        self._busy_us = 0.0
        self._jobs_run = 0

    def execute(self, demand_us: float, callback: Callable[[], None]) -> float:
        """Run a job of ``demand_us`` reference-µs; invoke ``callback``
        on completion.  Returns the completion time."""
        if demand_us < 0:
            raise SimulationError(f"negative CPU demand: {demand_us}")
        service = demand_us / self._cal.speed
        start = max(self._sim.now, self._ready_at)
        if start > self._sim.now:
            # Queued behind an earlier job: charge a context switch.
            service += self._cal.context_switch_us / self._cal.speed
        done = start + service
        self._ready_at = done
        self._busy_us += service
        self._jobs_run += 1
        # done >= now by construction, so the validated path is
        # redundant on this per-message hot path.
        self._sim.schedule_at_fast(done, callback)
        return done

    @property
    def busy_us(self) -> float:
        """Total busy time accumulated so far (µs)."""
        return self._busy_us

    @property
    def jobs_run(self) -> int:
        return self._jobs_run

    @property
    def queue_delay_us(self) -> float:
        """How long a job submitted now would wait before starting."""
        return max(0.0, self._ready_at - self._sim.now)

    def utilization(self, window_start: float) -> float:
        """Approximate utilization since ``window_start`` (0..1)."""
        elapsed = self._sim.now - window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_us / elapsed)


class Host:
    """One machine: a CPU, a NIC attachment, and its processes."""

    def __init__(self, sim: Simulator, name: str,
                 calibration: Optional[HostCalibration] = None):
        self.sim = sim
        self.name = name
        self.calibration = calibration or HostCalibration()
        self.cpu = Cpu(sim, self.calibration)
        self.alive = True
        self.processes: List["Process"] = []
        self.network: Optional["Network"] = None
        self._ports: Dict[int, Callable[[Any], None]] = {}
        self._next_ephemeral_port = 49152

    # ------------------------------------------------------------------
    # Ports (the network delivers frames to (host, port) handlers)
    # ------------------------------------------------------------------
    def bind(self, port: int, handler: Callable[[Any], None]) -> None:
        """Register a frame handler on ``port``."""
        if port in self._ports:
            raise SimulationError(f"{self.name}: port {port} already bound")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        """Release ``port`` (no-op if unbound)."""
        self._ports.pop(port, None)

    def allocate_port(self) -> int:
        """Return a fresh ephemeral port number."""
        port = self._next_ephemeral_port
        self._next_ephemeral_port += 1
        return port

    def deliver(self, port: int, payload: Any) -> None:
        """Hand an arriving frame to the bound handler, if any.

        Frames to dead hosts or unbound ports are silently dropped,
        matching real UDP/IP behaviour.
        """
        if not self.alive:
            return
        handler = self._ports.get(port)
        if handler is not None:
            handler(payload)

    # ------------------------------------------------------------------
    # Fault model
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Node-level crash fault: kill the host and all its processes."""
        if not self.alive:
            return
        self.alive = False
        self.sim.trace.record(self.sim.now, "host.crash",
                              f"host {self.name} crashed", host=self.name)
        for proc in list(self.processes):
            proc.kill(reason="host crash")
        self._ports.clear()

    def restart(self) -> None:
        """Bring a crashed host back (empty: processes must be respawned)."""
        if self.alive:
            return
        self.alive = True
        self.cpu = Cpu(self.sim, self.calibration)
        self.sim.trace.record(self.sim.now, "host.restart",
                              f"host {self.name} restarted", host=self.name)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Host {self.name} {state} procs={len(self.processes)}>"


class Process:
    """A process on a host.

    Subsystems (GCS clients, ORB endpoints, replicators) register
    themselves as *components* of a process; killing the process stops
    them all.  A process-level crash leaves the host (and the GCS
    daemon on it) running — the distinction matters for failure
    detection latency, exactly as in the paper's testbed.
    """

    def __init__(self, host: Host, name: str):
        if not host.alive:
            raise SimulationError(f"cannot start {name}: host {host.name} is down")
        self.host = host
        self.sim = host.sim
        self.name = name
        self.pid = self.sim.allocate_pid()
        self.alive = True
        self._on_kill: List[Callable[[], None]] = []
        host.processes.append(self)

    def on_kill(self, callback: Callable[[], None]) -> None:
        """Register a cleanup callback invoked when the process dies."""
        self._on_kill.append(callback)

    def kill(self, reason: str = "crash") -> None:
        """Process-level crash fault."""
        if not self.alive:
            return
        self.alive = False
        self.sim.trace.record(self.sim.now, "process.crash",
                              f"process {self.name} died ({reason})",
                              process=self.name, host=self.host.name,
                              reason=reason)
        for callback in list(self._on_kill):
            callback()
        self._on_kill.clear()
        if self in self.host.processes:
            self.host.processes.remove(self)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"<Process {self.name} pid={self.pid} on {self.host.name} {state}>"
