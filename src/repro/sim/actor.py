"""Actor base class: timer management tied to a process's lifetime.

Protocol modules (failure detectors, replicators, adaptation
coordinators) subclass :class:`Actor` to get timers that are cancelled
automatically when the owning process dies — a dead replica must not
keep heartbeating.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.host import Process
from repro.sim.kernel import EventHandle, Simulator


class Actor:
    """Event-driven component owned by a :class:`Process`."""

    def __init__(self, process: Process, name: Optional[str] = None):
        self.process = process
        self.sim: Simulator = process.sim
        self.name = name or f"{process.name}/{type(self).__name__}"
        self._timers: Dict[str, EventHandle] = {}
        process.on_kill(self._on_process_killed)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, key: str, delay_us: float,
                  callback: Callable[..., None], *args: Any) -> None:
        """(Re)arm a named one-shot timer; rearming cancels the old one."""
        self.cancel_timer(key)
        if not self.alive:
            return

        def fire() -> None:
            self._timers.pop(key, None)
            if self.alive:
                callback(*args)

        self._timers[key] = self.sim.schedule(delay_us, fire)

    def set_periodic_timer(self, key: str, interval_us: float,
                           callback: Callable[[], None]) -> None:
        """Arm a named timer that refires every ``interval_us`` until
        cancelled or the process dies."""
        self.cancel_timer(key)
        if not self.alive:
            return

        def fire() -> None:
            if not self.alive:
                self._timers.pop(key, None)
                return
            self._timers[key] = self.sim.schedule(interval_us, fire)
            callback()

        self._timers[key] = self.sim.schedule(interval_us, fire)

    def cancel_timer(self, key: str) -> None:
        """Cancel a named timer (no-op if absent)."""
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def cancel_all_timers(self) -> None:
        """Cancel every armed timer."""
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()

    def timer_pending(self, key: str) -> bool:
        """True if the named timer is armed."""
        return key in self._timers

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """An actor lives exactly as long as its process."""
        return self.process.alive

    def _on_process_killed(self) -> None:
        self.cancel_all_timers()
        self.on_stop()

    def on_stop(self) -> None:
        """Hook for subclasses; called once when the process dies."""

    def trace(self, category: str, message: str, **data: Any) -> None:
        """Record a trace entry stamped with this actor's name."""
        self.sim.trace.record(self.sim.now, category, message,
                              actor=self.name, **data)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
