"""Structured trace log for simulation runs.

Every subsystem records significant events (message sends, view
changes, checkpoints, style switches, faults) into the simulator's
:class:`TraceLog`.  The benchmarks and tests query the trace rather
than scraping printed output, and examples render it for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time (µs) at which the event was recorded.
    category:
        Dotted subsystem tag, e.g. ``"gcs.view"`` or ``"repl.switch"``.
    message:
        Human-readable one-liner.
    data:
        Structured payload for programmatic consumers.
    """

    time: float
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Append-only, queryable event trace.

    Categories are hierarchical by dot-separated prefix: querying for
    ``"gcs"`` matches ``"gcs.view"`` and ``"gcs.deliver"``.
    """

    def __init__(self, capacity: Optional[int] = None):
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self.enabled = True

    def record(self, time: float, category: str, message: str,
               **data: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time=time, category=category,
                          message=message, data=data)
        self._records.append(rec)
        if self._capacity is not None and len(self._records) > self._capacity:
            del self._records[:len(self._records) - self._capacity]
        for listener in self._listeners:
            listener(rec)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` on every future record."""
        self._listeners.append(listener)

    def query(self, category: Optional[str] = None,
              since: float = 0.0) -> List[TraceRecord]:
        """Return records matching a category prefix, at or after ``since``."""
        out = []
        for rec in self._records:
            if rec.time < since:
                continue
            if category is not None and not _matches(rec.category, category):
                continue
            out.append(rec)
        return out

    def count(self, category: Optional[str] = None) -> int:
        """Number of records matching the category prefix."""
        return len(self.query(category))

    def last(self, category: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record matching the category prefix, if any."""
        matching = self.query(category)
        return matching[-1] if matching else None

    def clear(self) -> None:
        """Drop all stored records (listeners stay subscribed)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)


def _matches(category: str, prefix: str) -> bool:
    """True if ``category`` equals ``prefix`` or is nested under it."""
    return category == prefix or category.startswith(prefix + ".")
