"""Sharded multi-group replication with per-shard dependability knobs.

``repro.cluster`` scales the single replica group of
:mod:`repro.replication` out to a *cluster* of them: a deterministic
partition map (consistent hashing with virtual nodes, plus explicit
per-key overrides) assigns every object key to one shard, each shard
is an independent replica group with its own replication style,
checkpoint interval and optional adaptation manager, and a
shard-aware client router demultiplexes one application connection
over all of them.

Public surface:

- :class:`PartitionMap` / :func:`build_map` — the key→shard mapping
- :class:`ShardRouter` — client-side demultiplexer over per-shard
  replicators, with in-flight re-routing on map changes
- :class:`ShardAdmin` — server-side migration participant (fence,
  state capture, adoption)
- :class:`ClusterCoordinator` — owns the map; serializes rebalances
  and dead-shard recovery over totally-ordered control multicast
- :class:`ShardSpec` / :func:`deploy_cluster` /
  :func:`deploy_cluster_client` — testbed assembly
- :func:`run_cluster_load`, :func:`run_cluster_rebalance_check`,
  :func:`run_cluster_trial` — the scenarios behind the ``cluster``
  bench profile, the no-lost-acked-updates check, and sharded
  campaign trials
"""

from repro.cluster.admin import ShardAdmin
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.deploy import (
    Cluster,
    ClusterClientStack,
    ShardDeployment,
    ShardSpec,
    deploy_cluster,
    deploy_cluster_client,
)
from repro.cluster.messages import (
    MapCommit,
    MigrationStart,
    MigrationState,
)
from repro.cluster.partition import PartitionMap, build_map
from repro.cluster.router import ShardRouter, control_group
from repro.cluster.scenario import (
    ClusterCheckOutcome,
    ClusterLoadResult,
    default_shard_styles,
    run_cluster_load,
    run_cluster_rebalance_check,
    run_cluster_trial,
)

__all__ = [
    "Cluster",
    "ClusterCheckOutcome",
    "ClusterClientStack",
    "ClusterCoordinator",
    "ClusterLoadResult",
    "MapCommit",
    "MigrationStart",
    "MigrationState",
    "PartitionMap",
    "ShardAdmin",
    "ShardDeployment",
    "ShardRouter",
    "ShardSpec",
    "build_map",
    "control_group",
    "default_shard_styles",
    "deploy_cluster",
    "deploy_cluster_client",
    "run_cluster_load",
    "run_cluster_rebalance_check",
    "run_cluster_trial",
]
