"""Deterministic partition map: consistent hashing with virtual nodes.

The cluster partitions the object-key space across independent
replication groups (*shards*).  Every router and every shard admin
holds a copy of the same :class:`PartitionMap`; map changes are
multicast AGREED on the cluster control group, so all copies flip at
the same point in the control-message total order (the classic
"agreement on the routing table" move of Bortnikov et al.'s
reconfigurable-SMR construction).

Determinism requirements, all load-bearing:

- hashing uses :func:`zlib.crc32`, which is independent of Python's
  per-process hash randomization, so every process — campaign worker,
  router, admin — computes identical rings;
- the ring is sorted by ``(point, shard, replica_index)``, making
  tie-breaks total;
- :meth:`digest` hashes the canonical JSON form, so two routers can
  prove they agree byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default virtual nodes per shard; enough to spread a handful of
#: shards evenly without bloating the ring.
DEFAULT_VNODES = 64

#: Bump when the hashing/ring rules change incompatibly.
MAP_VERSION = 1


def _point(token: str) -> int:
    """Ring position of ``token``: crc32, hash-randomization-free."""
    return zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class PartitionMap:
    """An immutable key-to-shard assignment with an epoch.

    ``shards`` are replication-group names.  ``overrides`` pin
    individual keys to a shard regardless of the ring — the mechanism
    behind operator-commanded rebalances (the ring stays put; only the
    moved keys change owner, so a rebalance migrates exactly the keys
    it names).
    """

    shards: Tuple[str, ...]
    epoch: int = 0
    vnodes: int = DEFAULT_VNODES
    overrides: Tuple[Tuple[str, str], ...] = ()
    version: int = MAP_VERSION

    def __post_init__(self) -> None:
        """Validate shape (frozen dataclass, so only checks here)."""
        if not self.shards:
            raise ConfigurationError("a partition map needs >= 1 shard")
        if len(set(self.shards)) != len(self.shards):
            raise ConfigurationError("duplicate shard names")
        if self.vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        for key, shard in self.overrides:
            if shard not in self.shards:
                raise ConfigurationError(
                    f"override {key!r} -> unknown shard {shard!r}")

    # ------------------------------------------------------------------
    # Ring construction and lookup
    # ------------------------------------------------------------------
    def _ring(self) -> List[Tuple[int, str]]:
        """The sorted vnode ring: (point, shard), total order."""
        ring: List[Tuple[int, int, str]] = []
        for shard in self.shards:
            for i in range(self.vnodes):
                ring.append((_point(f"{shard}#{i}"), i, shard))
        ring.sort()
        return [(point, shard) for point, _i, shard in ring]

    def owner_of(self, key: str) -> str:
        """The shard owning ``key`` (override first, then the ring)."""
        for okey, shard in self.overrides:
            if okey == key:
                return shard
        ring = self._ring()
        point = _point(key)
        for ring_point, shard in ring:
            if ring_point >= point:
                return shard
        return ring[0][1]  # wrap around

    def assignment(self, keys: Sequence[str]) -> Dict[str, str]:
        """Owner of every key in ``keys`` (insertion-ordered dict)."""
        return {key: self.owner_of(key) for key in keys}

    # ------------------------------------------------------------------
    # Map evolution (each step returns a new map with epoch + 1)
    # ------------------------------------------------------------------
    def reassign(self, key: str, shard: str) -> "PartitionMap":
        """Pin ``key`` to ``shard`` (operator rebalance)."""
        if shard not in self.shards:
            raise ConfigurationError(f"unknown shard {shard!r}")
        overrides = tuple((k, s) for k, s in self.overrides if k != key)
        return PartitionMap(shards=self.shards, epoch=self.epoch + 1,
                            vnodes=self.vnodes,
                            overrides=overrides + ((key, shard),))

    def without_shard(self, shard: str,
                      keys: Sequence[str] = ()) -> "PartitionMap":
        """Drop a (dead) shard; ``keys`` it owned are re-pinned to the
        survivors the shrunken ring chooses, so ownership of every
        other key is untouched."""
        if shard not in self.shards:
            raise ConfigurationError(f"unknown shard {shard!r}")
        survivors = tuple(s for s in self.shards if s != shard)
        if not survivors:
            raise ConfigurationError("cannot remove the last shard")
        overrides = tuple((k, s) for k, s in self.overrides if s != shard)
        shrunk = PartitionMap(shards=survivors, epoch=self.epoch + 1,
                              vnodes=self.vnodes, overrides=overrides)
        for key in keys:
            if self.owner_of(key) == shard:
                shrunk = PartitionMap(
                    shards=survivors, epoch=self.epoch + 1,
                    vnodes=self.vnodes,
                    overrides=shrunk.overrides
                    + ((key, shrunk.owner_of(key)),))
        return shrunk

    def rebalance_moves(self, new: "PartitionMap",
                        keys: Sequence[str]) -> Dict[Tuple[str, str],
                                                     List[str]]:
        """Keys of ``keys`` whose owner differs between ``self`` and
        ``new``, grouped by (source shard, destination shard)."""
        moves: Dict[Tuple[str, str], List[str]] = {}
        for key in keys:
            src, dst = self.owner_of(key), new.owner_of(key)
            if src != dst:
                moves.setdefault((src, dst), []).append(key)
        return moves

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready canonical dict."""
        return {"shards": list(self.shards), "epoch": self.epoch,
                "vnodes": self.vnodes,
                "overrides": [list(pair) for pair in self.overrides],
                "version": self.version}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PartitionMap":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(shards=tuple(data["shards"]),  # type: ignore[arg-type]
                       epoch=int(data["epoch"]),  # type: ignore[arg-type]
                       vnodes=int(data["vnodes"]),  # type: ignore[arg-type]
                       overrides=tuple(
                           (str(k), str(s))
                           for k, s in data["overrides"]),  # type: ignore
                       version=int(data["version"]))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad partition map: {exc}") from None

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form: two routers agree on
        the map iff their digests match."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_map(shards: Sequence[str], vnodes: int = DEFAULT_VNODES,
              overrides: Optional[Dict[str, str]] = None) -> PartitionMap:
    """Convenience constructor from plain sequences/dicts."""
    return PartitionMap(shards=tuple(shards), vnodes=vnodes,
                        overrides=tuple(sorted((overrides or {}).items())))
