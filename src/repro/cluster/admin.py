"""Per-replica shard administration: fences, state hand-off, map flips.

One :class:`ShardAdmin` rides next to each server replica of a sharded
deployment.  It is the replica-side half of the migration protocol:

1. ``MigrationStart`` (control group) — source replicas prepare to
   fence; the source *primary's* admin multicasts a :class:`Fence` on
   the shard's own group, so every source replica pauses intake at the
   same position of the shard's request total order.
2. At the fence, the primary's admin waits for in-flight requests to
   drain, captures the moving servants plus the completed entries of
   the duplicate-suppression cache, and multicasts a
   ``MigrationState`` on the control group.
3. ``MigrationState`` — destination replicas adopt the servants and
   absorb the seen-cache immediately (the transfer cost rides on the
   wire), so the keys are servable before any router can re-route.
4. ``MapCommit`` — everyone flips the map; source replicas drop the
   moved servants, resume intake, and silently discard any queued
   requests for keys they no longer own (the owned-filter seam).

The protocol needs no acknowledgements: the GCS sequencer totally
orders control-group and shard-group traffic together, so every
process observes Start < Fence < State < Commit in that order.
A source primary crashing between fence and capture stalls the
migration (its shard un-fences on failover, but no state is
published); the coordinator's fault scope excludes that window.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.gcs.client import CallbackListener
from repro.gcs.messages import Grade, MemberId
from repro.cluster.messages import MapCommit, MigrationStart, MigrationState
from repro.cluster.partition import PartitionMap
from repro.cluster.router import control_group
from repro.orb.server import OrbServer
from repro.replication.messages import Fence
from repro.replication.server import ServerReplicator


class ShardAdmin:
    """Migration agent attached to one server replica."""

    def __init__(self, replicator: ServerReplicator, orb: OrbServer,
                 cluster: str, pmap: PartitionMap):
        self.replicator = replicator
        self.orb = orb
        self.cluster = cluster
        self.shard = replicator.group
        self.map = pmap
        self.sim = replicator.sim
        #: migration id -> its Start, until the commit retires it.
        self._pending: Dict[str, MigrationStart] = {}
        #: migration ids this replica is currently fenced for.
        self._fenced: Set[str] = set()
        self.migrations_seen = 0
        replicator.fence_handler = self._on_fence
        replicator.owned_filter = self._owns
        replicator.gcs.join(control_group(cluster),
                            CallbackListener(on_message=self._on_control))

    # ------------------------------------------------------------------
    # Ownership (the replicator's owned-filter seam)
    # ------------------------------------------------------------------
    def _owns(self, object_key: str) -> bool:
        """Does this replica's shard own ``object_key`` right now?"""
        return self.map.owner_of(object_key) == self.shard

    # ------------------------------------------------------------------
    # Control-group delivery
    # ------------------------------------------------------------------
    def _on_control(self, group: str, sender: MemberId, payload: Any,
                    nbytes: int) -> None:
        if isinstance(payload, MigrationStart):
            self._on_start(payload)
        elif isinstance(payload, MigrationState):
            self._on_state(payload)
        elif isinstance(payload, MapCommit):
            self._on_commit(payload)

    def _on_start(self, start: MigrationStart) -> None:
        if start.migration_id in self._pending:
            return  # duplicate
        self._pending[start.migration_id] = start
        self.migrations_seen += 1
        if start.src == self.shard and not start.state_lost:
            if self.replicator.is_primary:
                # Fence the shard at one point of its own total order;
                # every source replica (this one included) pauses when
                # the fence is delivered back.
                fence = Fence(fence_id=start.migration_id,
                              initiator=self.replicator.member)
                self.replicator.gcs.multicast(
                    self.shard, fence, fence.wire_bytes,
                    grade=Grade.AGREED)
        elif start.state_lost and start.src != self.shard:
            # Dead-shard reassignment (``dst`` is ``"*"``): the source
            # group is gone, so no state or seen-cache will ever
            # arrive.  Each survivor adopts the subset of the keys the
            # *target* map hands it, with fresh (factory) state, and
            # journals the loss.
            target = PartitionMap.from_dict(start.new_map)
            mine = [key for key in start.keys
                    if target.owner_of(key) == self.shard]
            if mine:
                adopted = sum(1 for key in mine
                              if self.orb.adopt_servant(key))
                self._journal("migrate.lost",
                              migration_id=start.migration_id,
                              src=start.src, keys=len(mine),
                              adopted=adopted)

    def _on_fence(self, fence: Fence) -> None:
        """Fence handler (installed on the replicator): runs with
        intake already paused, at the fence's total-order position."""
        start = self._pending.get(fence.fence_id)
        if start is None or start.src != self.shard:
            # A fence for a migration this replica never saw start
            # (or not ours): nothing to hold the pause for.
            self.replicator._resume()
            return
        self._fenced.add(fence.fence_id)
        if self.replicator.is_primary:
            self.replicator._when_drained(
                lambda: self._publish_state(fence.fence_id))

    def _publish_state(self, migration_id: str) -> None:
        """Source primary, fenced and drained: capture and publish the
        moving keys' state on the control group."""
        start = self._pending.get(migration_id)
        if start is None or not self.replicator.alive:
            return
        state, nbytes = self.orb.capture_keys(start.keys)
        seen = self.replicator.completed_seen()
        msg = MigrationState(migration_id=migration_id, state=state,
                             state_bytes=nbytes, seen=seen,
                             source=self.replicator.member)
        self.replicator.gcs.multicast(
            control_group(self.cluster), msg, msg.wire_bytes,
            grade=Grade.AGREED)
        self._journal("migrate.capture", migration_id=migration_id,
                      dst=start.dst, keys=len(start.keys),
                      state_bytes=nbytes, seen=len(seen))

    def _on_state(self, msg: MigrationState) -> None:
        start = self._pending.get(msg.migration_id)
        if start is None or start.dst != self.shard:
            return
        # Adopt synchronously: the commit that lets routers re-route
        # is sequenced after this message, so the keys must be
        # servable before this handler returns.  The transfer cost is
        # modelled on the wire (state_bytes), not on this CPU.
        for key in start.keys:
            self.orb.adopt_servant(key, msg.state.get(key))
        self.replicator.absorb_seen(msg.seen)
        self._journal("migrate.apply", migration_id=msg.migration_id,
                      src=start.src, keys=len(start.keys),
                      state_bytes=msg.state_bytes, seen=len(msg.seen))

    def _on_commit(self, commit: MapCommit) -> None:
        new_map = PartitionMap.from_dict(commit.new_map)
        if new_map.epoch <= self.map.epoch:
            return  # duplicate or stale
        self.map = new_map
        start = self._pending.pop(commit.migration_id, None)
        if start is not None and start.src == self.shard:
            disowned = [key for key in self.orb.servant_keys
                        if new_map.owner_of(key) != self.shard]
            dropped = self.orb.drop_servants(disowned)
            self._journal("migrate.done", migration_id=commit.migration_id,
                          dst=start.dst, dropped=dropped,
                          epoch=new_map.epoch)
            if commit.migration_id in self._fenced:
                self._fenced.discard(commit.migration_id)
                self.replicator._resume()

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def _journal(self, kind: str, **attrs) -> None:
        """Record a cluster event (no-op when the journal is off)."""
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now,
                           self.replicator.process.host.name,
                           "cluster", kind,
                           process=self.replicator.process.name,
                           shard=self.shard, **attrs)
