"""Cluster assembly: shards, coordinator, and shard-aware clients.

Builds a sharded deployment on an existing :class:`Testbed`: one
replica group per shard (each with its own replication style,
checkpoint interval, and — optionally — its own adaptation manager),
one coordinator process owning the partition map, and clients whose
ORB sits on a :class:`ShardRouter` instead of a single-group
replicator.

Placement rotates primaries across the server hosts: shard *i*'s
first-deployed replica (its deterministic primary) lands on host
``i mod n_hosts``, so adding shards adds *parallel* primaries and the
aggregate closed-loop throughput scales with the shard count until
the hosts saturate — the scaling the ``cluster`` bench profile
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.adaptation.manager import AdaptationManager
from repro.cluster.admin import ShardAdmin
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.partition import PartitionMap, build_map
from repro.cluster.router import ShardRouter
from repro.core.policies import ThresholdSwitchPolicy
from repro.errors import ClusterError
from repro.experiments.testbed import Replica, Testbed
from repro.gcs.client import GcsClient
from repro.orb import OrbClient, OrbServer, Servant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
    ServerReplicator,
)
from repro.sim.host import Process


@dataclass(frozen=True)
class ShardSpec:
    """Per-shard dependability knob settings.

    Each shard is an independent replica group: its style, replica
    count and checkpoint interval are its own knobs, and ``policy``
    optionally attaches per-replica adaptation managers so one shard
    can switch styles at runtime while its neighbours stay put.
    """

    name: str
    style: ReplicationStyle = ReplicationStyle.ACTIVE
    n_replicas: int = 2
    checkpoint_interval: int = 10
    broadcast_requests: bool = False
    policy: Optional[ThresholdSwitchPolicy] = None
    #: Explicit replica placement (host of rank 0, rank 1, ...); when
    #: None, replicas rotate over the cluster's server hosts.  The
    #: bench pins backups to a spill host so primaries own their CPUs.
    hosts: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        """Validate shape (frozen dataclass, so only checks here)."""
        if not self.name:
            raise ClusterError("a shard needs a name")
        if self.n_replicas < 1:
            raise ClusterError("a shard needs >= 1 replica")
        if self.hosts is not None and len(self.hosts) < self.n_replicas:
            raise ClusterError("fewer placement hosts than replicas")

    def replication_config(self) -> ReplicationConfig:
        """The server-side knob bundle this spec describes."""
        return ReplicationConfig(
            style=self.style, group=self.name,
            checkpoint_interval_requests=self.checkpoint_interval,
            broadcast_requests=self.broadcast_requests)


@dataclass
class ShardDeployment:
    """One deployed shard: its replicas, admins and managers."""

    spec: ShardSpec
    replicas: List[Replica] = field(default_factory=list)
    admins: List[ShardAdmin] = field(default_factory=list)
    managers: List[AdaptationManager] = field(default_factory=list)

    @property
    def primary_replica(self) -> Optional[Replica]:
        """The replica acting as primary right now, if any is alive."""
        for replica in self.replicas:
            if replica.alive and replica.replicator.is_primary:
                return replica
        return None

    def crash(self) -> None:
        """Kill every replica of this shard (dead-shard fault)."""
        for replica in self.replicas:
            if replica.alive:
                replica.crash()


@dataclass
class ClusterClientStack:
    """One deployed shard-aware client and its middleware stack."""

    process: Process
    gcs: GcsClient
    router: ShardRouter
    orb_client: OrbClient

    @property
    def alive(self) -> bool:
        return self.process.alive


@dataclass
class Cluster:
    """A fully deployed sharded service."""

    testbed: Testbed
    name: str
    map: PartitionMap
    keys: List[str]
    shards: Dict[str, ShardDeployment]
    coordinator: ClusterCoordinator
    clients: List[ClusterClientStack] = field(default_factory=list)

    def shard_of(self, key: str) -> ShardDeployment:
        """The shard currently owning ``key`` per the committed map."""
        return self.shards[self.coordinator.map.owner_of(key)]

    def client_configs(self) -> Dict[str, ClientReplicationConfig]:
        """One client-side config per shard (expected style seeded
        from the shard's spec; replies teach the client the truth)."""
        return {name: ClientReplicationConfig(
                    group=name, expected_style=shard.spec.style)
                for name, shard in self.shards.items()}


def deploy_cluster(testbed: Testbed, specs: Sequence[ShardSpec],
                   keys: Sequence[str],
                   servant_factory: Callable[[str], Servant],
                   cluster: str = "cluster",
                   server_hosts: Optional[Sequence[str]] = None
                   ) -> Cluster:
    """Deploy every shard of ``specs`` plus the coordinator.

    ``keys`` are pinned to shards round-robin (as map overrides), so a
    small key set still balances exactly.  Every replica registers
    only the servants its shard owns and keeps ``servant_factory`` for
    keys migrated in later.
    """
    if not specs:
        raise ClusterError("a cluster needs >= 1 shard")
    if len({spec.name for spec in specs}) != len(specs):
        raise ClusterError("duplicate shard names")
    hosts = list(server_hosts if server_hosts is not None
                 else sorted(h for h in testbed.hosts if h.startswith("s")))
    if not hosts:
        raise ClusterError("no server hosts to deploy on")
    shard_names = [spec.name for spec in specs]
    overrides = {key: shard_names[i % len(shard_names)]
                 for i, key in enumerate(keys)}
    pmap = build_map(shard_names, overrides=overrides)

    # Coordinator first: its watches see every join from view one.
    coord_process = testbed.spawn(hosts[0], f"{cluster}-coord")
    coord_gcs = testbed.connect(coord_process)
    coordinator = ClusterCoordinator(coord_gcs, cluster, pmap, keys)

    shards: Dict[str, ShardDeployment] = {}
    for index, spec in enumerate(specs):
        deployment = ShardDeployment(spec=spec)
        config = spec.replication_config()
        owned = [key for key in keys if pmap.owner_of(key) == spec.name]
        for rank in range(spec.n_replicas):
            if spec.hosts is not None:
                host = spec.hosts[rank]
            else:
                host = hosts[(index + rank) % len(hosts)]
            process = testbed.spawn(host, f"{spec.name}-r{rank + 1}")
            gcs = testbed.connect(process)
            replicator = ServerReplicator(
                gcs, config,
                replication_cal=testbed.calibration.replication,
                interpose_cal=testbed.calibration.interpose,
                store=testbed.store)
            # Per-shard attribution: journal events and latency
            # histograms from this replica carry the shard name.
            replicator.shard = spec.name
            orb_server = OrbServer(process, replicator,
                                   calibration=testbed.calibration.orb)
            orb_server.servant_factory = servant_factory
            built: Dict[str, Servant] = {}
            for key in owned:
                servant = servant_factory(key)
                orb_server.register(key, servant)
                built[key] = servant
            replicator.bind_state_provider(orb_server)
            admin = ShardAdmin(replicator, orb_server, cluster, pmap)
            orb_server.start()
            if spec.policy is not None:
                deployment.managers.append(
                    AdaptationManager(replicator, spec.policy))
            deployment.replicas.append(Replica(
                process=process, gcs=gcs, replicator=replicator,
                orb_server=orb_server, servants=built))
            deployment.admins.append(admin)
            # Let each join (and state sync) settle before the next,
            # so join order — and thus the primary — is deterministic.
            testbed.run(30_000)
        shards[spec.name] = deployment
        journal = testbed.sim.journal
        if journal.enabled:
            journal.record(testbed.sim.now, hosts[index % len(hosts)],
                           "cluster", "shard", shard=spec.name,
                           style=spec.style.value,
                           replicas=spec.n_replicas,
                           checkpoint_interval=spec.checkpoint_interval)

    return Cluster(testbed=testbed, name=cluster, map=pmap,
                   keys=list(keys), shards=shards,
                   coordinator=coordinator)


def deploy_cluster_client(cluster: Cluster, host_name: str,
                          process_name: Optional[str] = None
                          ) -> ClusterClientStack:
    """Build one shard-aware client: process + GCS connection + shard
    router + ORB client, registered with the cluster."""
    testbed = cluster.testbed
    name = process_name or f"client@{host_name}"
    process = testbed.spawn(host_name, name)
    gcs = testbed.connect(process)
    router = ShardRouter(gcs, cluster.name, cluster.map,
                         cluster.client_configs(),
                         interpose_cal=testbed.calibration.interpose)
    orb_client = OrbClient(process, router,
                           calibration=testbed.calibration.orb)
    stack = ClusterClientStack(process=process, gcs=gcs, router=router,
                               orb_client=orb_client)
    cluster.clients.append(stack)
    return stack
