"""Cluster scenarios: scaling load, rebalance checking, campaign trials.

Three engines built on :mod:`repro.cluster.deploy`:

- :func:`run_cluster_load` — the closed-loop scaling experiment behind
  the ``cluster`` bench profile: the same key universe and client fleet
  against 1..N shards on the *same* host set, so aggregate throughput
  isolates the effect of parallel primaries.
- :func:`run_cluster_rebalance_check` — replicated counters, a live
  rebalance mid-traffic, then the :mod:`repro.check` verifiers over
  the client-observed history: no acknowledged increment may be lost
  across the migration, and none may double-apply.
- :func:`run_cluster_trial` — the sharded flavour of one campaign
  trial, producing the same :class:`FaultTrialResult` metrics as the
  single-group trial so campaign records stay schema-compatible.

Shard placement puts shard *i*'s primary alone on server host *i* and
all backups on one spill host, so only the (single) active shard's
backup consumes spill CPU and every added shard adds a whole primary
CPU — the layout under which closed-loop throughput scales with the
shard count until the client fleet saturates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.deploy import (
    Cluster,
    ClusterClientStack,
    ShardSpec,
    deploy_cluster,
    deploy_cluster_client,
)
from repro.errors import ClusterError
from repro.experiments.testbed import Testbed
from repro.faults import FaultInjector
from repro.orb import BusyServant, CounterServant
from repro.replication import ReplicationStyle
from repro.sim import (
    PAPER_LATENCY_LIMIT_US,
    SubstrateCalibration,
    default_calibration,
)
from repro.workload import ClosedLoopClient, ConstantRate, OpenLoopClient

#: Cluster-scenario defaults: heavier per-request work than the
#: micro-benchmark, so primary CPU — the resource sharding multiplies —
#: dominates the round trip.
DEFAULT_CLUSTER_PROCESSING_US = 1_500.0
DEFAULT_CLUSTER_REQUEST_BYTES = 128
DEFAULT_CLUSTER_REPLY_BYTES = 128
DEFAULT_CLUSTER_STATE_BYTES = 256


def default_shard_styles(n_shards: int) -> List[ReplicationStyle]:
    """One active shard, warm-passive for the rest: two styles coexist
    (the per-shard-knobs claim) while backups stay off the hot CPUs."""
    return [ReplicationStyle.ACTIVE] + \
        [ReplicationStyle.WARM_PASSIVE] * (n_shards - 1)


def _scaling_specs(n_shards: int, styles: Sequence[ReplicationStyle],
                   n_server_hosts: int, checkpoint_interval: int,
                   n_replicas: int = 2) -> List[ShardSpec]:
    """Primary of shard i alone on host i+1; backups on the last host."""
    if n_server_hosts < n_shards + 1:
        raise ClusterError(
            f"{n_shards} shards need {n_shards + 1} server hosts "
            f"(one per primary plus a backup spill host), "
            f"got {n_server_hosts}")
    spill = f"s{n_server_hosts:02d}"
    specs = []
    for i in range(n_shards):
        placement = (f"s{i + 1:02d}",) + (spill,) * (n_replicas - 1)
        specs.append(ShardSpec(
            name=f"shard{i}", style=styles[i % len(styles)],
            n_replicas=n_replicas,
            checkpoint_interval=checkpoint_interval,
            hosts=placement))
    return specs


def _enable(calibration: Optional[SubstrateCalibration],
            telemetry: bool, journal: bool) -> Optional[SubstrateCalibration]:
    """Calibration with telemetry/journal switched on as requested."""
    if not telemetry and not journal:
        return calibration
    calibration = calibration or default_calibration()
    if telemetry:
        calibration = replace(
            calibration,
            telemetry=replace(calibration.telemetry, enabled=True))
    if journal:
        calibration = replace(
            calibration,
            journal=replace(calibration.journal, enabled=True))
    return calibration


@dataclass
class ClusterLoadResult:
    """Aggregate outcome of one sharded load scenario."""

    n_shards: int
    n_clients: int
    shard_styles: Dict[str, str]
    sent: int
    completed: int
    throughput_per_s: float
    latency_mean_us: float
    jitter_us: float
    bandwidth_mbps: float
    wire_bytes: float
    duration_us: float
    events_dispatched: int
    #: Per-shard request/reply/checkpoint rollups (summed over the
    #: shard's replicas).
    per_shard: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: One map digest per router; all equal iff the routers agree.
    map_digests: List[str] = field(default_factory=list)
    map_epoch: int = 0
    rerouted: int = 0
    migrations_committed: int = 0
    #: The run's dependability journal (set when journaling was on).
    journal: Optional[Any] = None
    #: The run's span/metrics recorder (set when telemetry was on).
    telemetry: Optional[Any] = None

    @property
    def routers_agree(self) -> bool:
        """Did every router end the run on the same committed map?"""
        return len(set(self.map_digests)) <= 1


def run_cluster_load(n_shards: int = 4, n_clients: int = 12,
                     n_requests: int = 50, seed: int = 0,
                     n_keys: int = 8,
                     n_server_hosts: Optional[int] = None,
                     styles: Optional[Sequence[ReplicationStyle]] = None,
                     checkpoint_interval: int = 25,
                     processing_us: float = DEFAULT_CLUSTER_PROCESSING_US,
                     request_bytes: int = DEFAULT_CLUSTER_REQUEST_BYTES,
                     reply_bytes: int = DEFAULT_CLUSTER_REPLY_BYTES,
                     state_bytes: int = DEFAULT_CLUSTER_STATE_BYTES,
                     rebalance: Optional[Tuple[str, str, float]] = None,
                     calibration: Optional[SubstrateCalibration] = None,
                     telemetry: bool = False,
                     journal: bool = False) -> ClusterLoadResult:
    """Closed-loop load against a sharded service.

    Every client cycles through all ``n_keys`` keys round-robin, so
    offered load spreads evenly over the shards.  ``rebalance`` is an
    optional ``(key, destination_shard, at_us)`` triple: ``at_us``
    after the load starts, the coordinator migrates ``key`` live.
    Fix ``n_server_hosts`` when comparing shard counts, so every
    configuration runs on the same machine set.
    """
    if n_shards < 1:
        raise ClusterError("need >= 1 shard")
    if n_keys < n_shards:
        raise ClusterError("need at least one key per shard")
    hosts = n_server_hosts if n_server_hosts is not None \
        else n_shards + 1
    style_list = list(styles) if styles is not None \
        else default_shard_styles(n_shards)
    calibration = _enable(calibration, telemetry, journal)
    testbed = Testbed.paper_testbed(hosts, n_clients, seed=seed,
                                    calibration=calibration)
    specs = _scaling_specs(n_shards, style_list, hosts,
                           checkpoint_interval)
    keys = [f"obj{i:02d}" for i in range(n_keys)]
    cluster = deploy_cluster(
        testbed, specs, keys,
        servant_factory=lambda key: BusyServant(
            processing_us=processing_us, reply_bytes=reply_bytes,
            state_bytes=state_bytes))
    stacks = [deploy_cluster_client(cluster, f"w{i:02d}")
              for i in range(1, n_clients + 1)]
    testbed.run(150_000)

    loaders = [ClosedLoopClient(stack, n_requests, object_keys=keys,
                                payload_bytes=request_bytes)
               for stack in stacks]
    start = testbed.now
    start_bytes = testbed.network.stats.total_bytes
    for loader in loaders:
        loader.start()
    if rebalance is not None:
        key, dst, at_us = rebalance
        testbed.sim.schedule_at(
            start + at_us,
            lambda: cluster.coordinator.rebalance(key, dst))
    while not all(loader.done for loader in loaders):
        testbed.run(50_000)
        if testbed.now - start > 1e10:  # safety valve
            break
    last_completion = max((loader.stats.completion_times[-1]
                           for loader in loaders
                           if loader.stats.completion_times),
                          default=testbed.now)
    duration = max(last_completion - start, 1.0)
    wire_bytes = float(testbed.network.stats.total_bytes - start_bytes)

    latencies: List[float] = []
    sent = completed = 0
    for loader in loaders:
        latencies.extend(loader.stats.latencies_us)
        sent += loader.stats.sent
        completed += loader.stats.completed
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    jitter = 0.0
    if len(latencies) > 1:
        jitter = (sum((v - mean) ** 2 for v in latencies)
                  / len(latencies)) ** 0.5

    per_shard: Dict[str, Dict[str, int]] = {}
    for name, deployment in cluster.shards.items():
        per_shard[name] = {
            "processed": sum(r.replicator.requests_processed
                             for r in deployment.replicas),
            "replies": sum(r.replicator.replies_sent
                           for r in deployment.replicas),
            "checkpoints": sum(r.replicator.checkpoints_sent
                               for r in deployment.replicas),
            "duplicates": sum(r.replicator.duplicates_suppressed
                              for r in deployment.replicas),
        }
    return ClusterLoadResult(
        n_shards=n_shards, n_clients=n_clients,
        shard_styles={spec.name: spec.style.value for spec in specs},
        sent=sent, completed=completed,
        throughput_per_s=(completed / duration * 1e6
                          if duration > 0 else 0.0),
        latency_mean_us=mean, jitter_us=jitter,
        bandwidth_mbps=wire_bytes / duration if duration > 0 else 0.0,
        wire_bytes=wire_bytes, duration_us=duration,
        events_dispatched=testbed.sim.events_dispatched,
        per_shard=per_shard,
        map_digests=[stack.router.map_digest for stack in stacks],
        map_epoch=cluster.coordinator.map.epoch,
        rerouted=sum(stack.router.rerouted for stack in stacks),
        migrations_committed=cluster.coordinator.migrations_committed,
        journal=(testbed.sim.journal
                 if testbed.sim.journal.enabled else None),
        telemetry=(testbed.sim.telemetry
                   if testbed.sim.telemetry.enabled else None))


# ---------------------------------------------------------------------------
# Rebalance safety: no acked request lost, none double-applied
# ---------------------------------------------------------------------------

@dataclass
class ClusterCheckOutcome:
    """Everything one rebalance-check run produced, plus the verdict."""

    ok: bool
    violations: List[Dict[str, Any]]
    operations: int
    completed: int
    giveups: int
    survivor_values: Dict[str, List[int]]
    migrations_committed: int
    rerouted: int
    map_digests: List[str]
    digest: str
    events_dispatched: int
    journal_events: List[Any] = field(default_factory=list)


def run_cluster_rebalance_check(n_shards: int = 2, n_clients: int = 2,
                                n_requests: int = 16, seed: int = 0,
                                n_keys: int = 4,
                                rebalance_at_us: float = 60_000.0,
                                checkpoint_interval: int = 1,
                                settle_us: float = 2_000_000.0
                                ) -> ClusterCheckOutcome:
    """Live-rebalance safety check over replicated counters.

    Closed-loop increment clients run against a sharded counter
    service; mid-window the coordinator migrates one key from shard 0
    to shard 1 (and one back the other way), with traffic in flight.
    Afterwards the :mod:`repro.check` verifiers assert, per key, that
    every acknowledged increment survived (``no_lost_acked_updates``)
    and none applied twice (``at_most_once``), plus the journal-level
    protocol invariants.  Replicas of different shards never share a
    host here, so view-based event attribution stays unambiguous.
    """
    if n_shards < 2:
        raise ClusterError("a rebalance check needs >= 2 shards")
    from repro.check import (
        HistoryRecorder,
        check_counter_consistency,
        check_invariants,
    )
    from repro.journal.io import events_to_jsonl

    calibration = _enable(None, telemetry=False, journal=True)
    n_replicas = 2
    n_server_hosts = n_shards * n_replicas  # disjoint hosts per shard
    testbed = Testbed.paper_testbed(n_server_hosts, n_clients, seed=seed,
                                    calibration=calibration)
    history = HistoryRecorder()
    testbed.sim.history = history

    specs = []
    for i in range(n_shards):
        placement = tuple(f"s{i * n_replicas + r + 1:02d}"
                          for r in range(n_replicas))
        specs.append(ShardSpec(
            name=f"shard{i}",
            style=(ReplicationStyle.WARM_PASSIVE if i % 2 == 0
                   else ReplicationStyle.ACTIVE),
            n_replicas=n_replicas,
            checkpoint_interval=checkpoint_interval,
            hosts=placement))
    keys = [f"ctr{i:02d}" for i in range(n_keys)]
    cluster = deploy_cluster(testbed, specs, keys,
                             servant_factory=lambda key: CounterServant())
    stacks = [deploy_cluster_client(cluster, f"w{i:02d}")
              for i in range(1, n_clients + 1)]
    testbed.run(150_000)

    loaders = [ClosedLoopClient(stack, n_requests, object_keys=keys,
                                operation="add", payload=1,
                                payload_bytes=32)
               for stack in stacks]
    start = testbed.now
    for loader in loaders:
        loader.start()
    # Two live migrations, opposite directions, with requests in
    # flight: key 0 (shard0's) to shard1, key 1 (shard1's) to shard0.
    testbed.sim.schedule_at(
        start + rebalance_at_us,
        lambda: cluster.coordinator.rebalance(keys[0], "shard1"))
    if n_keys > 1:
        testbed.sim.schedule_at(
            start + rebalance_at_us * 2,
            lambda: cluster.coordinator.rebalance(keys[1], "shard0"))
    rounds = 0
    while not all(loader.done for loader in loaders) and rounds < 400:
        testbed.run(50_000)
        rounds += 1
    testbed.run(settle_us)

    survivor_values: Dict[str, List[int]] = {}
    violations: List[Dict[str, Any]] = []
    final_map = cluster.coordinator.map
    for key in keys:
        owner = cluster.shards[final_map.owner_of(key)]
        values = []
        for replica in owner.replicas:
            if replica.alive and key in replica.orb_server.servant_keys:
                values.append(replica.orb_server.servant(key).value)
        survivor_values[key] = values
        for violation in check_counter_consistency(
                history.operations, values, object_key=key):
            violations.append(violation.to_dict())
    journal_events = list(testbed.sim.journal.events)
    for violation in check_invariants(journal_events):
        violations.append(violation.to_dict())

    hasher = hashlib.sha256()
    hasher.update(events_to_jsonl(journal_events).encode())
    hasher.update(history.serialize().encode())
    hasher.update(repr(sorted(survivor_values.items())).encode())
    giveups = sum(stack.router.replicator(name).failures
                  for stack in stacks for name in cluster.shards)
    return ClusterCheckOutcome(
        ok=not violations, violations=violations,
        operations=len(history.operations),
        completed=sum(l.stats.completed for l in loaders),
        giveups=giveups,
        survivor_values=survivor_values,
        migrations_committed=cluster.coordinator.migrations_committed,
        rerouted=sum(stack.router.rerouted for stack in stacks),
        map_digests=[stack.router.map_digest for stack in stacks],
        digest=hasher.hexdigest(),
        events_dispatched=testbed.sim.events_dispatched,
        journal_events=journal_events)


# ---------------------------------------------------------------------------
# Campaign trial (the sharded unit of a fault-injection sweep)
# ---------------------------------------------------------------------------

def run_cluster_trial(style: ReplicationStyle, n_shards: int,
                      n_clients: int, duration_us: float,
                      rate_per_s: float, seed: int = 0,
                      checkpoint_interval: int = 1,
                      deadline_us: float = PAPER_LATENCY_LIMIT_US,
                      fault_load: str = "none",
                      settle_us: float = 1_500_000.0,
                      calibration: Optional[SubstrateCalibration] = None,
                      telemetry: bool = False,
                      journal: bool = False,
                      check: bool = False,
                      slo: bool = False):
    """One open-loop campaign trial against a sharded deployment.

    Mirrors :func:`repro.experiments.trial.run_fault_trial` — same
    workload shape, same metric definitions, same result type — with
    the service sharded ``n_shards`` ways (every shard at ``style``)
    and a mid-window rebalance of one key, so campaign sweeps exercise
    the migration path as a matter of course.  ``fault_load`` is
    restricted to ``none`` and ``process_crash`` (which kills shard
    0's primary): the other dictionary loads assume a single replica
    group.
    """
    from repro.experiments.trial import FaultTrialResult, OUTAGE_KINDS
    if fault_load not in ("none", "process_crash"):
        raise ClusterError(
            f"sharded trials support fault loads 'none' and "
            f"'process_crash', not {fault_load!r}")
    if n_shards < 2:
        raise ClusterError("a cluster trial needs >= 2 shards")
    if check or slo:
        journal = True
    calibration = _enable(calibration, telemetry, journal)
    n_server_hosts = n_shards + 1
    testbed = Testbed.paper_testbed(n_server_hosts, max(n_clients, 1),
                                    seed=seed, calibration=calibration)
    history = None
    if check:
        from repro.check import HistoryRecorder
        history = HistoryRecorder()
        testbed.sim.history = history
    specs = _scaling_specs(n_shards, [style], n_server_hosts,
                           checkpoint_interval)
    keys = [f"obj{i:02d}" for i in range(2 * n_shards)]
    cluster = deploy_cluster(
        testbed, specs, keys,
        servant_factory=lambda key: BusyServant(
            processing_us=15.0,
            reply_bytes=DEFAULT_CLUSTER_REPLY_BYTES,
            state_bytes=DEFAULT_CLUSTER_STATE_BYTES))
    stacks = [deploy_cluster_client(cluster, f"w{i:02d}")
              for i in range(1, n_clients + 1)]
    testbed.run(150_000)

    injector = FaultInjector(testbed.sim, testbed.network)
    t0 = testbed.now
    if fault_load == "process_crash":
        primary = cluster.shards["shard0"].replicas[0]
        injector.crash_process_at(primary.process,
                                  t0 + 0.3 * duration_us)
    # Every sharded trial rebalances one key mid-window: migrations
    # are part of the measured behaviour, not a special case.
    testbed.sim.schedule_at(
        t0 + 0.5 * duration_us,
        lambda: cluster.coordinator.rebalance(
            keys[0], cluster.map.shards[-1]))

    loaders = [OpenLoopClient(stack, ConstantRate(rate_per_s),
                              duration_us,
                              object_key=keys[i % len(keys)],
                              payload_bytes=DEFAULT_CLUSTER_REQUEST_BYTES)
               for i, stack in enumerate(stacks)]
    start = testbed.now
    start_bytes = testbed.network.stats.total_bytes
    for loader in loaders:
        loader.start()
    testbed.run(duration_us + settle_us)
    window_end = start + duration_us
    wire_bytes = float(testbed.network.stats.total_bytes - start_bytes)
    elapsed = testbed.now - start

    sent = sum(l.stats.sent for l in loaders)
    completed = sum(l.stats.completed for l in loaders)
    latencies = [v for l in loaders for v in l.stats.latencies_us]
    completions = sorted(t for l in loaders
                         for t in l.stats.completion_times)
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    jitter = 0.0
    if len(latencies) > 1:
        jitter = (sum((v - mean) ** 2 for v in latencies)
                  / len(latencies)) ** 0.5

    recoveries: List[float] = []
    downtime = 0.0
    for fault in injector.injected:
        if fault.kind not in OUTAGE_KINDS or fault.at_us >= window_end:
            continue
        after = [t for t in completions if t > fault.at_us]
        if after:
            recoveries.append(after[0] - fault.at_us)
        else:
            recoveries.append(elapsed - (fault.at_us - start))
        downtime += min(recoveries[-1], window_end - fault.at_us)
    availability = max(0.0, 1.0 - downtime / duration_us)
    mean_recovery = (sum(recoveries) / len(recoveries)
                     if recoveries else 0.0)

    telemetry_digest = None
    if testbed.sim.telemetry.enabled:
        from repro.telemetry.analysis import telemetry_summary
        telemetry_digest = telemetry_summary(testbed.sim.telemetry)

    journal_events = None
    journal_summary = None
    if testbed.sim.journal.enabled:
        from repro.journal.io import journal_digest
        journal_events = list(testbed.sim.journal.events)
        journal_summary = journal_digest(testbed.sim.journal,
                                         window_start_us=start,
                                         window_end_us=window_end)

    check_digest = None
    if check:
        assert history is not None and journal_events is not None
        from repro.check import (
            IncrementSpec,
            check_invariants,
            check_linearizability,
        )
        violations = list(check_invariants(journal_events))
        # Linearizability is a single-object property: check each
        # key's history against the spec independently.
        lin_ok, lin_skipped, n_ops = True, False, 0
        for key in keys:
            ops = tuple(op for op in history.operations
                        if op.object_key == key)
            n_ops += len(ops)
            lin = check_linearizability(ops, IncrementSpec())
            lin_ok = lin_ok and lin.ok
            lin_skipped = lin_skipped or lin.skipped
        check_digest = {
            "ok": bool(lin_ok and not violations),
            "operations": n_ops,
            "violations": [v.to_dict() for v in violations],
            "linearizable": lin_ok,
            "linearizability_skipped": lin_skipped,
            "truncated_rings": dict(
                testbed.sim.journal.truncated_rings()),
        }

    slo_digest = None
    if slo:
        assert journal_events is not None
        from repro.experiments.trial import slo_trial_digest
        slo_digest = slo_trial_digest(
            journal_events, window_start_us=start,
            window_end_us=window_end,
            registry=getattr(testbed.sim.telemetry, "metrics", None))

    return FaultTrialResult(
        style=style, n_replicas=2, n_clients=n_clients,
        duration_us=duration_us, sent=sent, completed=completed,
        failed=max(sent - completed, 0),
        late=sum(1 for v in latencies if v > deadline_us),
        availability=availability, mean_recovery_us=mean_recovery,
        recovery_times_us=recoveries, latency_mean_us=mean,
        jitter_us=jitter,
        bandwidth_mbps=wire_bytes / elapsed if elapsed > 0 else 0.0,
        wire_bytes=wire_bytes, injected=list(injector.injected),
        telemetry=telemetry_digest, journal=journal_summary,
        journal_events=journal_events, check=check_digest,
        slo=slo_digest)
