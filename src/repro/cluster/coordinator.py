"""Cluster coordinator: the single writer of the partition map.

The coordinator runs in its own process, joins the control group, and
watches every shard's replica group.  It is the only component that
*proposes* map changes; the changes themselves take effect through the
control group's total order, so the coordinator crashing mid-protocol
never leaves two routers with different committed maps.

Two things trigger a migration:

- an operator command (:meth:`rebalance`, also reachable through the
  ``repro cluster rebalance`` CLI), which pins one key to a new shard
  and moves its state there; and
- a shard's replica group dying entirely (every member crashed), which
  re-pins the dead shard's keys to the survivors with ``state_lost``
  set — the keys come back empty, and the journal records the loss as
  a dependability event rather than papering over it.

Migrations are strictly serialized: a new trigger queues behind the
in-flight one, and the next ``MigrationStart`` is only multicast once
the previous ``MapCommit`` has been delivered back to the coordinator.
A migration whose source shard dies mid-protocol is out of scope for
the fault loads the campaign layer injects into sharded trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReplicationError
from repro.gcs.client import CallbackListener, GcsClient, GroupListener
from repro.gcs.messages import Grade, GroupView, MemberId
from repro.cluster.messages import MapCommit, MigrationStart, MigrationState
from repro.cluster.partition import PartitionMap
from repro.cluster.router import control_group
from repro.sim.actor import Actor


@dataclass(frozen=True)
class _PlannedMigration:
    """One queued map change, waiting for its turn on the wire."""

    migration_id: str
    src: str
    dst: str
    keys: Tuple[str, ...]
    new_map: PartitionMap
    state_lost: bool = False


class ClusterCoordinator(Actor):
    """Serializes partition-map changes onto the control group."""

    def __init__(self, gcs: GcsClient, cluster: str, pmap: PartitionMap,
                 keys: Sequence[str]):
        super().__init__(gcs.process, name=f"coord:{gcs.process.name}")
        self.gcs = gcs
        self.cluster = cluster
        self.map = pmap
        #: The key universe — needed to enumerate a dead shard's keys.
        self.keys: Tuple[str, ...] = tuple(keys)
        self._queue: List[_PlannedMigration] = []
        self._inflight: Optional[_PlannedMigration] = None
        self._mid_seq = 0
        self._shard_peak: Dict[str, int] = {}
        self._dead_shards: Set[str] = set()
        self.migrations_committed = 0
        gcs.join(control_group(cluster),
                 CallbackListener(on_message=self._on_control))
        for shard in pmap.shards:
            gcs.watch(shard, _ShardWatch(self, shard))

    # ------------------------------------------------------------------
    # Operator API
    # ------------------------------------------------------------------
    def rebalance(self, key: str, dst: str) -> Optional[str]:
        """Pin ``key`` to shard ``dst``, migrating its state.  Returns
        the migration id, or None when ``dst`` already owns the key."""
        if dst not in self.map.shards:
            raise ReplicationError(f"unknown shard {dst!r}")
        src = self.map.owner_of(key)
        if src == dst:
            return None
        # Build on the newest map we know *plus* queued changes, so
        # back-to-back rebalances compose instead of clobbering.
        base = self._queue[-1].new_map if self._queue else (
            self._inflight.new_map if self._inflight else self.map)
        planned = _PlannedMigration(
            migration_id=self._next_mid(src, dst), src=src, dst=dst,
            keys=(key,), new_map=base.reassign(key, dst))
        self._queue.append(planned)
        self._maybe_start()
        return planned.migration_id

    def _next_mid(self, src: str, dst: str) -> str:
        self._mid_seq += 1
        return f"{self.cluster}:m{self._mid_seq}:{src}->{dst}"

    # ------------------------------------------------------------------
    # Dead-shard handling
    # ------------------------------------------------------------------
    def _on_shard_view(self, shard: str, view: GroupView,
                       crashed: bool) -> None:
        if view.members:
            self._shard_peak[shard] = max(
                self._shard_peak.get(shard, 0), len(view.members))
            return
        if not crashed or self._shard_peak.get(shard, 0) == 0:
            return  # never populated, or a voluntary wind-down
        if shard in self._dead_shards or shard not in self.map.shards:
            return
        self._dead_shards.add(shard)
        lost = tuple(key for key in self.keys
                     if self.map.owner_of(key) == shard)
        self._journal("shard.lost", shard=shard, keys=len(lost))
        planned = _PlannedMigration(
            migration_id=self._next_mid(shard, "*"), src=shard, dst="*",
            keys=lost, new_map=self.map.without_shard(shard, self.keys),
            state_lost=True)
        self._queue.append(planned)
        self._maybe_start()

    # ------------------------------------------------------------------
    # Migration state machine
    # ------------------------------------------------------------------
    def _maybe_start(self) -> None:
        if self._inflight is not None or not self._queue \
                or not self.alive:
            return
        planned = self._queue.pop(0)
        self._inflight = planned
        start = MigrationStart(
            migration_id=planned.migration_id,
            new_map=planned.new_map.to_dict(), src=planned.src,
            dst=planned.dst, keys=planned.keys,
            state_lost=planned.state_lost)
        self.gcs.multicast(control_group(self.cluster), start,
                           start.wire_bytes, grade=Grade.AGREED)
        self._journal("migrate.start", shard=planned.src,
                      migration_id=planned.migration_id,
                      src=planned.src, dst=planned.dst,
                      keys=len(planned.keys),
                      state_lost=planned.state_lost)

    def _on_control(self, group: str, sender: MemberId, payload: Any,
                    nbytes: int) -> None:
        inflight = self._inflight
        if isinstance(payload, MigrationStart):
            # A lost-state migration has no capture phase: commit as
            # soon as our own Start is delivered (by then, every
            # survivor has adopted its share of the keys).
            if inflight is not None and payload.state_lost \
                    and payload.migration_id == inflight.migration_id:
                self._commit(inflight)
        elif isinstance(payload, MigrationState):
            if inflight is not None \
                    and payload.migration_id == inflight.migration_id:
                self._commit(inflight)
        elif isinstance(payload, MapCommit):
            new_map = PartitionMap.from_dict(payload.new_map)
            if new_map.epoch > self.map.epoch:
                self.map = new_map
            if inflight is not None \
                    and payload.migration_id == inflight.migration_id:
                self._inflight = None
                self.migrations_committed += 1
                self._maybe_start()

    def _commit(self, planned: _PlannedMigration) -> None:
        commit = MapCommit(migration_id=planned.migration_id,
                           new_map=planned.new_map.to_dict(),
                           map_digest=planned.new_map.digest())
        self.gcs.multicast(control_group(self.cluster), commit,
                           commit.wire_bytes, grade=Grade.AGREED)
        self._journal("map", shard=planned.src,
                      migration_id=planned.migration_id,
                      epoch=planned.new_map.epoch,
                      digest=planned.new_map.digest())

    # ------------------------------------------------------------------
    # Introspection / journal
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no migration is in flight or queued."""
        return self._inflight is None and not self._queue

    def _journal(self, kind: str, shard: Optional[str] = None,
                 **attrs) -> None:
        """Record a cluster event (no-op when the journal is off)."""
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.process.host.name,
                           "cluster", f"coord.{kind}", shard=shard,
                           process=self.process.name, **attrs)


class _ShardWatch(GroupListener):
    """Membership watcher feeding dead-shard detection."""

    def __init__(self, coordinator: ClusterCoordinator, shard: str):
        self._coordinator = coordinator
        self._shard = shard

    def on_view(self, view: GroupView, joined: List[MemberId],
                left: List[MemberId], crashed: bool) -> None:
        """Forward the view to the coordinator's shard tracker."""
        self._coordinator._on_shard_view(self._shard, view, crashed)
