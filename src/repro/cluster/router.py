"""Shard-aware client router: one transport over many replica groups.

The :class:`ShardRouter` implements the :class:`ClientTransport` seam,
so an unmodified :class:`OrbClient` talks to a *sharded* service
exactly as it would to a single replicated one — the cluster layer
extends the paper's transparency argument one level up.  Internally
the router keeps one :class:`ClientReplicator` per shard and picks the
replicator by the partition map's owner of each request's object key.

Map changes arrive as ``MapCommit`` messages on the cluster control
group (AGREED, hence totally ordered with the migration's state
transfer).  On a commit the router atomically flips its map, then
*recalls* every outstanding invocation whose key changed owner and
re-issues it through the new owner's replicator.  The destination
shard installed the source's duplicate-suppression cache before the
commit was sequenced, so a re-issued request that the old owner had
already executed is answered from the cache, keeping the end-to-end
contract at-most-once.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Optional

from repro.errors import ReplicationError
from repro.gcs.client import CallbackListener, GcsClient
from repro.gcs.messages import MemberId
from repro.orb.giop import GiopRequest
from repro.orb.transport import ClientTransport, ReplyHandler
from repro.cluster.messages import MapCommit
from repro.cluster.partition import PartitionMap
from repro.replication.client import ClientReplicator
from repro.replication.messages import RepReply
from repro.replication.styles import (
    ClientReplicationConfig,
    ResiliencePolicy,
)
from repro.sim.actor import Actor
from repro.sim.config import InterposeCalibration
from repro.telemetry.context import context_of, set_context


def control_group(cluster: str) -> str:
    """Name of the cluster's control (map/migration) group."""
    return f"{cluster}.ctl"


class ShardRouter(Actor, ClientTransport):
    """Routes invocations to the shard owning each object key."""

    def __init__(self, gcs: GcsClient, cluster: str, pmap: PartitionMap,
                 configs: Dict[str, ClientReplicationConfig],
                 interpose_cal: Optional[InterposeCalibration] = None,
                 on_failure: Optional[Callable[[GiopRequest], None]] = None,
                 resilience: Optional[ResiliencePolicy] = None):
        super().__init__(gcs.process, name=f"router:{gcs.process.name}")
        if set(configs) != set(pmap.shards):
            raise ReplicationError(
                "router needs exactly one client config per shard: "
                f"map has {sorted(pmap.shards)}, configs for "
                f"{sorted(configs)}")
        if resilience is not None:
            # Router-level resilience knob: apply one policy uniformly
            # across every shard's replicator (per-shard configs with
            # their own policy win when no override is given).
            configs = {shard: replace(cfg, resilience=resilience)
                       for shard, cfg in configs.items()}
        self.gcs = gcs
        self.cluster = cluster
        self.map = pmap
        self.on_failure = on_failure
        #: request id -> owning shard, for reply demultiplexing.
        self._routes: Dict[str, str] = {}
        self.rerouted = 0
        self.stray_replies = 0
        self.map_flips = 0
        # Per-shard client replicators.  Each constructor clobbers the
        # GCS client's single direct-message handler, so the router
        # installs its own handler LAST and demultiplexes replies into
        # the owning replicator itself.
        self._replicators: Dict[str, ClientReplicator] = {}
        for shard in pmap.shards:
            replicator = ClientReplicator(
                gcs, configs[shard], interpose_cal=interpose_cal,
                on_failure=self._make_failure_hook(shard))
            replicator.shard = shard
            self._replicators[shard] = replicator
        gcs.on_direct(self._on_direct)
        gcs.join(control_group(cluster),
                 CallbackListener(on_message=self._on_control))

    def _make_failure_hook(self, shard: str
                           ) -> Callable[[GiopRequest], None]:
        """Failure callback for one shard's replicator: clears the
        route, then forwards to the router-level hook."""
        def hook(request: GiopRequest) -> None:
            self._routes.pop(request.request_id, None)
            if self.on_failure is not None:
                self.on_failure(request)
        return hook

    # ==================================================================
    # ClientTransport interface (called by OrbClient)
    # ==================================================================
    def send_request(self, request: GiopRequest,
                     on_reply: ReplyHandler) -> None:
        """Route one invocation to the shard owning its object key."""
        if not self.alive:
            raise ReplicationError(f"{self.process.name} is dead")
        shard = self.map.owner_of(request.object_key)
        self._dispatch(shard, request, self._routed(request, on_reply))

    def close(self) -> None:
        """Drop all outstanding invocations in every shard."""
        self._routes.clear()
        for replicator in self._replicators.values():
            replicator.close()

    def _routed(self, request: GiopRequest,
                on_reply: ReplyHandler) -> ReplyHandler:
        """Wrap ``on_reply`` so the route entry dies with the reply."""
        if request.oneway:
            return on_reply
        request_id = request.request_id

        def routed(reply: Any) -> None:
            self._routes.pop(request_id, None)
            on_reply(reply)

        return routed

    def _dispatch(self, shard: str, request: GiopRequest,
                  on_reply: ReplyHandler) -> None:
        if not request.oneway:
            self._routes[request.request_id] = shard
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            ctx = context_of(request)
            if ctx is not None:
                # Zero-width charged span: the routing decision itself
                # costs no simulated time, but the span pins the shard
                # (and epoch) onto the trace so cross-shard stitching
                # can see every hop of a re-routed request.
                telemetry.emit(ctx.at_root(), "router.route", "router",
                               self.sim.now, self.sim.now,
                               host=self.process.host.name,
                               process=self.process.name,
                               shard=shard, epoch=self.map.epoch)
        self._replicators[shard].send_request(request, on_reply)

    # ==================================================================
    # Reply demultiplexing
    # ==================================================================
    def _on_direct(self, sender: MemberId, payload: Any,
                   nbytes: int) -> None:
        """The process's single direct-message handler: hand each
        reply to the replicator of the shard that served it."""
        if not isinstance(payload, RepReply):
            return
        shard = self._routes.get(payload.reply.request_id)
        if shard is None:
            # A duplicate of an already-answered request, or a late
            # reply from a shard the key migrated away from.
            self.stray_replies += 1
            return
        self._replicators[shard]._on_direct(sender, payload, nbytes)

    # ==================================================================
    # Control group: partition-map commits
    # ==================================================================
    def _on_control(self, group: str, sender: MemberId, payload: Any,
                    nbytes: int) -> None:
        if isinstance(payload, MapCommit):
            self._adopt(PartitionMap.from_dict(payload.new_map))

    def _adopt(self, new_map: PartitionMap) -> None:
        """Flip to ``new_map`` and re-route displaced invocations."""
        if new_map.epoch <= self.map.epoch:
            return  # duplicate or stale commit
        self.map = new_map
        self.map_flips += 1
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.process.host.name,
                           "cluster", "router.map",
                           process=self.process.name,
                           epoch=new_map.epoch, digest=new_map.digest())
        telemetry = self.sim.telemetry
        for shard, replicator in self._replicators.items():
            recalled = replicator.recall(
                lambda req, _shard=shard:
                new_map.owner_of(req.object_key) != _shard)
            for request, on_reply in recalled:
                # ``on_reply`` is the already-wrapped routed handler,
                # so dispatching directly avoids double wrapping.
                self.rerouted += 1
                owner = new_map.owner_of(request.object_key)
                if journal.enabled:
                    journal.record(self.sim.now,
                                   self.process.host.name,
                                   "cluster", "router.reroute",
                                   shard=owner,
                                   process=self.process.name,
                                   request_id=request.request_id,
                                   from_shard=shard,
                                   epoch=new_map.epoch)
                if telemetry.enabled:
                    ctx = context_of(request)
                    if ctx is not None:
                        # Re-root the carried context so the new
                        # owner's spans hang off the original client
                        # request — one stitched trace across the map
                        # flip, not a trace per shard attempt.
                        ctx = ctx.at_root()
                        set_context(request, ctx)
                        telemetry.emit(ctx, "router.reroute", "router",
                                       self.sim.now, self.sim.now,
                                       host=self.process.host.name,
                                       process=self.process.name,
                                       shard=owner, from_shard=shard,
                                       epoch=new_map.epoch)
                self._dispatch(owner, request, on_reply)

    # ==================================================================
    # Introspection
    # ==================================================================
    @property
    def map_digest(self) -> str:
        """Digest of the current map; equal across agreeing routers."""
        return self.map.digest()

    @property
    def outstanding_count(self) -> int:
        """Invocations awaiting a reply, across all shards."""
        return sum(r.outstanding_count
                   for r in self._replicators.values())

    def replicator(self, shard: str) -> ClientReplicator:
        """The client replicator bound to ``shard``."""
        try:
            return self._replicators[shard]
        except KeyError:
            raise ReplicationError(f"unknown shard {shard!r}") from None

    def on_stop(self) -> None:
        """Drop routes when the process dies."""
        self._routes.clear()
