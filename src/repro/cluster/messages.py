"""Cluster control-plane messages, carried on the ``<cluster>.ctl``
group.

Every message is multicast AGREED, so all control-group members —
the coordinator, each shard admin and each router — deliver the same
sequence at the same points of the cluster-wide total order.  The
commit protocol leans on that order twice: ``MigrationState`` always
precedes its ``MapCommit``, so destination replicas install the moved
state before any router can flip the map and re-route traffic; and
two concurrent rebalances serialize, because whichever ``MapCommit``
is sequenced first bumps the epoch the second must build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.gcs.messages import MemberId

#: Fixed cluster-layer header added to every message's wire size.
CLUSTER_HEADER_BYTES = 48


@dataclass(frozen=True)
class MigrationStart:
    """Phase 1: announce a migration and its target map.

    Source-shard replicas fence and quiesce on delivery; routers keep
    routing by the *old* map until the commit (requests caught behind
    the fence are recalled and re-routed then).
    """

    migration_id: str
    new_map: Dict[str, Any]
    src: str
    dst: str
    keys: Tuple[str, ...]
    #: True when the source group is gone (dead-shard reassignment):
    #: no state capture is possible, destinations adopt fresh state.
    state_lost: bool = False

    @property
    def wire_bytes(self) -> int:
        return CLUSTER_HEADER_BYTES + 32 * len(self.keys) + 128


@dataclass(frozen=True)
class MigrationState:
    """Phase 2: the captured state of the moving keys.

    Published by the source primary's admin after the fence drained;
    carries the servant snapshots plus the completed entries of the
    source's duplicate-suppression cache, so a retry of a request the
    source already acknowledged is suppressed at the destination too.
    """

    migration_id: str
    state: Dict[str, Any]
    state_bytes: int
    seen: Tuple[Tuple[str, Any], ...]
    source: MemberId

    @property
    def wire_bytes(self) -> int:
        return CLUSTER_HEADER_BYTES + self.state_bytes + 24 * len(self.seen)


@dataclass(frozen=True)
class MapCommit:
    """Phase 3: atomically flip the partition map.

    On delivery routers adopt the new map and re-route any in-flight
    requests for moved keys; source replicas drop the moved servants
    and resume; destination replicas (which installed the state at the
    preceding ``MigrationState``) start serving the keys.
    """

    migration_id: str
    new_map: Dict[str, Any]
    map_digest: str

    @property
    def wire_bytes(self) -> int:
        return CLUSTER_HEADER_BYTES + 256
