"""The adaptation loop: monitoring -> policy -> style switch.

Section 3.1: adaptation "is performed automatically, according to a
set of policies that can be either pre-defined or introduced at run
time", and decisions are "made in a distributed manner by a
deterministic algorithm that takes this replicated state as its
input".

One :class:`AdaptationManager` runs beside each server replicator.
Each manager periodically publishes its locally observed request
arrival rate into the group's :class:`ReplicatedState`; every manager
then evaluates the *same deterministic policy* over the *same agreed
state*, so all replicas reach the same decision.  Whichever manager
acts first wins; the others' concurrent switch commands are duplicates
and are discarded by the Fig. 5 protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.policies import ThresholdSwitchPolicy
from repro.errors import AdaptationError
from repro.gcs.client import GcsClient
from repro.monitoring.replicated_state import ReplicatedState
from repro.replication.server import ServerReplicator
from repro.replication.styles import ReplicationStyle
from repro.sim.actor import Actor


@dataclass(frozen=True)
class AdaptationEvent:
    """One adaptation decision taken by a manager."""

    time: float
    rate_per_s: float
    from_style: ReplicationStyle
    to_style: ReplicationStyle
    switch_id: str


class AdaptationManager(Actor):
    """Policy-driven runtime adaptation for one replica."""

    def __init__(self, replicator: ServerReplicator,
                 policy: ThresholdSwitchPolicy,
                 monitor_gcs: Optional[GcsClient] = None,
                 evaluation_interval_us: float = 100_000.0,
                 cooldown_us: float = 1_000_000.0):
        super().__init__(replicator.process,
                         name=f"adapt:{replicator.process.name}")
        if evaluation_interval_us <= 0:
            raise AdaptationError("evaluation interval must be positive")
        self.replicator = replicator
        self.policy = policy
        self.cooldown_us = cooldown_us
        self._last_switch_at = -cooldown_us
        self.events: List[AdaptationEvent] = []
        self.rate_samples: List[tuple] = []
        #: ``(time, service_p99_us, queue_depth)`` samples read from the
        #: telemetry registry each tick (empty when telemetry is off).
        #: Kept local — publishing them would add GCS traffic and break
        #: the telemetry-on/off determinism guarantee.
        self.telemetry_samples: List[tuple] = []
        # The replicated system state lives in a sibling group so the
        # monitoring traffic never mixes with application requests.
        gcs = monitor_gcs or replicator.gcs
        self.state = ReplicatedState(gcs, f"{replicator.group}.mon")
        self.set_periodic_timer("adapt", evaluation_interval_us,
                                self._tick)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self.replicator.synced:
            return
        local_rate = self.replicator.arrivals.rate(self.sim.now)
        self.state.publish_own("rate", local_rate)
        group_rate = self.group_rate()
        self.rate_samples.append((self.sim.now, group_rate))
        self._sample_telemetry()
        target = self.policy.decide(self.replicator.style, group_rate)
        if target is None:
            return
        if self.replicator.switching:
            return
        if self.sim.now - self._last_switch_at < self.cooldown_us:
            return
        try:
            switch_id = self.replicator.request_switch(target)
        except AdaptationError:
            return  # lost a race with another manager; harmless
        self._last_switch_at = self.sim.now
        event = AdaptationEvent(
            time=self.sim.now, rate_per_s=group_rate,
            from_style=self.replicator.style, to_style=target,
            switch_id=switch_id)
        self.events.append(event)
        self.trace("adapt.switch",
                   f"rate {group_rate:.0f} req/s -> switching to "
                   f"{target.value}", rate=group_rate,
                   target=target.value, switch_id=switch_id)
        journal = self.sim.journal
        if journal.enabled:
            # The replicated-state inputs the deterministic policy saw:
            # every manager evaluates the same agreed per-member rates,
            # so concurrent initiations carry identical inputs and the
            # journal merges them into one decision with N voters.
            journal.record(
                self.sim.now, self.process.host.name, "adaptation",
                "adaptation.decision", switch_id=switch_id,
                rate_per_s=group_rate,
                from_style=event.from_style.value,
                to_style=target.value,
                inputs={str(k): v
                        for k, v in self.state.items_matching("rate").items()})

    def _sample_telemetry(self) -> None:
        """Record registry-backed service-time p99 and queue depth for
        this replica (observation only; nothing is multicast)."""
        registry = getattr(self.sim.telemetry, "metrics", None)
        if registry is None:
            return
        p99 = 0.0
        hist = registry.merged_histogram("replica_service_us")
        if hist is not None and hist.count:
            p99 = hist.quantile(0.99)
        self.telemetry_samples.append(
            (self.sim.now, p99, float(self.replicator.queued_requests)))

    def group_rate(self) -> float:
        """Deterministic aggregate over the replicated state: the
        maximum published per-member rate.  In passive mode only the
        primary observes the full request stream, so max (not mean)
        reflects the true offered load."""
        rates = self.state.values_matching("rate")
        return max(rates) if rates else 0.0

    @property
    def switches_triggered(self) -> int:
        return len(self.events)
