"""Operating modes and degraded-contract negotiation.

Section 3.1: "If the contracts for the desired behavior can no longer
be honored, the replicator adapts the fault-tolerance to the new
working conditions (including modes within the application, if they
happen to exist). ... if the re-enforcement of a previous contract is
not feasible, versatile dependability can offer alternative (possibly
degraded) behavioral contracts that the application might still wish
to have; manual intervention might be warranted in some extreme
cases."

An :class:`OperatingMode` bundles a knob configuration with the
contracts it promises.  The :class:`ModeManager` applies modes,
monitors their contracts against live metrics, and on sustained
violation steps down through the declared degradation chain — raising
:class:`ContractViolation` (the "manual intervention" signal) only
when even the most degraded mode cannot be honoured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import AdaptationError, ContractViolation
from repro.monitoring.contracts import Contract, ContractMonitor, ContractStatus
from repro.monitoring.sensors import MetricsSnapshot
from repro.replication.styles import ReplicationStyle


@dataclass(frozen=True)
class OperatingMode:
    """One named operating point: knob settings + promised contracts."""

    name: str
    style: ReplicationStyle
    n_replicas: int
    contracts: Tuple[Contract, ...] = ()
    checkpoint_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise AdaptationError("a mode needs at least one replica")
        if not self.name:
            raise AdaptationError("modes must be named")


@dataclass(frozen=True)
class ModeTransition:
    """Record of one mode change."""

    time: float
    from_mode: Optional[str]
    to_mode: str
    reason: str


class ModeManager:
    """Applies operating modes and degrades them when contracts fail.

    Parameters
    ----------
    modes:
        The degradation chain, most-capable first.  ``set_mode`` may
        jump anywhere; automatic degradation only moves *down* the
        chain from the current position.
    style_knob, replicas_knob, checkpoint_knob:
        The low-level knobs the manager drives (any may be None if
        the deployment fixes that dimension).
    violation_tolerance:
        Consecutive violating evaluations required before degrading
        (debounce against transient spikes).
    """

    def __init__(self, modes: Sequence[OperatingMode],
                 style_knob=None, replicas_knob=None,
                 checkpoint_knob=None,
                 violation_tolerance: int = 3,
                 on_transition: Optional[Callable[[ModeTransition], None]] = None):
        if not modes:
            raise AdaptationError("at least one mode required")
        names = [mode.name for mode in modes]
        if len(set(names)) != len(names):
            raise AdaptationError("mode names must be unique")
        if violation_tolerance < 1:
            raise AdaptationError("violation tolerance must be >= 1")
        self.modes: List[OperatingMode] = list(modes)
        self._style_knob = style_knob
        self._replicas_knob = replicas_knob
        self._checkpoint_knob = checkpoint_knob
        self.violation_tolerance = violation_tolerance
        self._on_transition = on_transition
        self._current_index: Optional[int] = None
        self._monitor: Optional[ContractMonitor] = None
        self._consecutive_violations = 0
        self.transitions: List[ModeTransition] = []

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    @property
    def current_mode(self) -> Optional[OperatingMode]:
        if self._current_index is None:
            return None
        return self.modes[self._current_index]

    def mode_named(self, name: str) -> OperatingMode:
        """Look up a declared mode by name."""
        for mode in self.modes:
            if mode.name == name:
                return mode
        raise AdaptationError(f"unknown mode: {name}")

    def set_mode(self, name: str, time: float = 0.0,
                 reason: str = "operator request") -> OperatingMode:
        """Apply a mode by name (operator-initiated transition)."""
        index = next(i for i, mode in enumerate(self.modes)
                     if mode.name == self.mode_named(name).name)
        return self._apply(index, time, reason)

    def _apply(self, index: int, time: float,
               reason: str) -> OperatingMode:
        mode = self.modes[index]
        previous = self.current_mode.name if self.current_mode else None
        if self._replicas_knob is not None:
            self._replicas_knob.set(mode.n_replicas)
        if self._style_knob is not None:
            current_style = self._style_knob.get()
            if current_style is not mode.style:
                self._style_knob.set(mode.style)
        if self._checkpoint_knob is not None \
                and mode.checkpoint_interval is not None:
            self._checkpoint_knob.set(mode.checkpoint_interval)
        self._current_index = index
        self._monitor = ContractMonitor(list(mode.contracts))
        self._consecutive_violations = 0
        transition = ModeTransition(time=time, from_mode=previous,
                                    to_mode=mode.name, reason=reason)
        self.transitions.append(transition)
        if self._on_transition is not None:
            self._on_transition(transition)
        return mode

    # ------------------------------------------------------------------
    # Contract supervision
    # ------------------------------------------------------------------
    def evaluate(self, snapshot: MetricsSnapshot) -> ContractStatus:
        """Feed one metrics snapshot; degrade if the current mode's
        contracts keep failing.

        Returns the worst contract status observed this round.  Raises
        :class:`ContractViolation` when the *last* (most degraded)
        mode is itself in sustained violation.
        """
        if self._monitor is None or self._current_index is None:
            raise AdaptationError("no mode applied yet")
        statuses = self._monitor.evaluate(snapshot)
        worst = ContractStatus.HONOURED
        for status in statuses.values():
            if status is ContractStatus.VIOLATED:
                worst = ContractStatus.VIOLATED
            elif status is ContractStatus.WARNING \
                    and worst is ContractStatus.HONOURED:
                worst = ContractStatus.WARNING
        if worst is ContractStatus.VIOLATED:
            self._consecutive_violations += 1
        else:
            self._consecutive_violations = 0
        if self._consecutive_violations >= self.violation_tolerance:
            self._degrade(snapshot.time)
        return worst

    def _degrade(self, time: float) -> None:
        assert self._current_index is not None
        if self._current_index + 1 >= len(self.modes):
            raise ContractViolation(
                f"mode '{self.modes[self._current_index].name}' cannot "
                f"be honoured and no more degraded mode exists; manual "
                f"intervention required")
        self._apply(self._current_index + 1, time,
                    reason="sustained contract violation")

    @property
    def degradations(self) -> int:
        return sum(1 for t in self.transitions
                   if t.reason == "sustained contract violation")
