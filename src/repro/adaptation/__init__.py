"""Adaptation: the automatic monitoring -> policy -> switch loop.

Public surface:

- :class:`AdaptationManager` — per-replica adaptation driver
- :class:`AdaptationEvent` — one decision record

The Fig. 5 switch *protocol* itself lives with the replicator
(:mod:`repro.replication.switch` / :class:`ServerReplicator`); this
package is the policy layer that decides *when* to invoke it.
"""

from repro.adaptation.manager import AdaptationEvent, AdaptationManager
from repro.adaptation.modes import (
    ModeManager,
    ModeTransition,
    OperatingMode,
)

__all__ = [
    "AdaptationEvent",
    "AdaptationManager",
    "ModeManager",
    "ModeTransition",
    "OperatingMode",
]
