"""Library-interposition layer (pass-through interception mode).

Public surface:

- :class:`InterceptedClientTransport` — client calls intercepted,
  traffic unchanged
- :class:`InterceptedServerTransport` — server calls intercepted,
  traffic unchanged

The *redirecting* interposition mode — the replicator proper — lives
in :mod:`repro.replication` and implements the same transport seam.
"""

from repro.interpose.interceptor import (
    InterceptedClientTransport,
    InterceptedServerTransport,
)

__all__ = [
    "InterceptedClientTransport",
    "InterceptedServerTransport",
]
