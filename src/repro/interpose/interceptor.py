"""Library interposition (pass-through mode).

The paper's replicator is an ``LD_PRELOAD``-style shared library that
intercepts TCP system calls under the ORB.  Figure 4 measures the cost
of *interception alone* — system calls intercepted but not modified —
for three configurations (client only, server only, both).  These
wrappers reproduce that operating mode: they charge the per-call
interception cost on the host CPU and attribute it to the replicator
component, then pass the traffic through unchanged.

The redirect-to-group-communication mode is the replication layer
itself (:mod:`repro.replication`), which implements these same
transport interfaces.
"""

from __future__ import annotations

from typing import Optional

from repro.orb.accounting import COMPONENT_REPLICATOR
from repro.orb.giop import GiopReply, GiopRequest
from repro.orb.transport import (
    ClientTransport,
    ReplyHandler,
    RequestHandler,
    ServerTransport,
    ServiceAddress,
)
from repro.sim.config import InterposeCalibration
from repro.sim.host import Process
from repro.telemetry.context import context_of


class InterceptedClientTransport(ClientTransport):
    """Client-side system-call interception without modification."""

    def __init__(self, process: Process, inner: ClientTransport,
                 calibration: Optional[InterposeCalibration] = None):
        self.process = process
        self.inner = inner
        self.cal = calibration or InterposeCalibration()
        self.calls_intercepted = 0

    def send_request(self, request: GiopRequest,
                     on_reply: ReplyHandler) -> None:
        """Charge interception cost, then pass through."""
        self.calls_intercepted += 1
        cost = self.cal.intercept_us
        request.timeline.add(COMPONENT_REPLICATOR, cost)
        telemetry = self.process.sim.telemetry
        span = None
        if telemetry.enabled:
            span = telemetry.begin(
                context_of(request), "intercept.request",
                COMPONENT_REPLICATOR, host=self.process.host.name,
                process=self.process.name, now=self.process.sim.now)

        def forward() -> None:
            if telemetry.enabled:
                telemetry.end(span, self.process.sim.now)
            if not self.process.alive:
                return
            self.inner.send_request(request, intercept_reply)

        def intercept_reply(reply: GiopReply) -> None:
            self.calls_intercepted += 1
            reply.timeline.add(COMPONENT_REPLICATOR, cost)
            reply_span = None
            if telemetry.enabled:
                reply_span = telemetry.begin(
                    context_of(reply), "intercept.reply",
                    COMPONENT_REPLICATOR, host=self.process.host.name,
                    process=self.process.name, now=self.process.sim.now)

            def deliver() -> None:
                if telemetry.enabled:
                    telemetry.end(reply_span, self.process.sim.now)
                if self.process.alive:
                    on_reply(reply)

            self.process.host.cpu.execute(cost, deliver)

        self.process.host.cpu.execute(cost, forward)

    def close(self) -> None:
        """Close the wrapped transport."""
        self.inner.close()


class InterceptedServerTransport(ServerTransport):
    """Server-side system-call interception without modification."""

    def __init__(self, process: Process, inner: ServerTransport,
                 calibration: Optional[InterposeCalibration] = None):
        self.process = process
        self.inner = inner
        self.cal = calibration or InterposeCalibration()
        self.calls_intercepted = 0

    def start(self, on_request: RequestHandler) -> ServiceAddress:
        """Wrap the request path with interception costs."""
        cost = self.cal.intercept_us

        def intercept_request(request: GiopRequest,
                              send_reply: ReplyHandler) -> None:
            self.calls_intercepted += 1
            request.timeline.add(COMPONENT_REPLICATOR, cost)
            telemetry = self.process.sim.telemetry
            span = None
            if telemetry.enabled:
                span = telemetry.begin(
                    context_of(request), "intercept.request",
                    COMPONENT_REPLICATOR, host=self.process.host.name,
                    process=self.process.name, now=self.process.sim.now)

            def intercepted_reply(reply: GiopReply) -> None:
                self.calls_intercepted += 1
                reply.timeline.add(COMPONENT_REPLICATOR, cost)
                reply_span = None
                if telemetry.enabled:
                    reply_span = telemetry.begin(
                        context_of(reply), "intercept.reply",
                        COMPONENT_REPLICATOR, host=self.process.host.name,
                        process=self.process.name,
                        now=self.process.sim.now)

                def deliver() -> None:
                    if telemetry.enabled:
                        telemetry.end(reply_span, self.process.sim.now)
                    if self.process.alive:
                        send_reply(reply)

                self.process.host.cpu.execute(cost, deliver)

            def dispatch() -> None:
                if telemetry.enabled:
                    telemetry.end(span, self.process.sim.now)
                if self.process.alive:
                    on_request(request, intercepted_reply)

            self.process.host.cpu.execute(cost, dispatch)

        return self.inner.start(intercept_request)

    def stop(self) -> None:
        """Stop the wrapped transport."""
        self.inner.stop()
