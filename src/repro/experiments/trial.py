"""One fault-injection trial: the unit of work of a campaign.

A *trial* drives an open-loop workload against a replicated service
for a fixed window while a fault load plays out, then reduces the run
to the dependability metrics of the paper's trade-off space:
availability, failed/late request fractions, recovery time, latency
and bandwidth.  The campaign engine (:mod:`repro.campaign`) sweeps
this scenario over knob configurations x fault loads x seeds; it is
equally usable stand-alone (see ``examples/fault_campaign.py``).

The open loop matters: a closed-loop client stops offering load the
moment a reply goes missing, which would hide exactly the outages a
dependability benchmark must expose.  Rate-driven arrivals keep
offering requests through the outage, so unanswered requests surface
as *failed* and slow ones as *late*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    DEFAULT_PROCESSING_US,
    DEFAULT_REPLY_BYTES,
    DEFAULT_REQUEST_BYTES,
    DEFAULT_STATE_BYTES,
    _servant_factory,
)
from repro.experiments.testbed import (
    ClientStack,
    Replica,
    Testbed,
    deploy_client,
    deploy_replica,
    deploy_replica_group,
)
from repro.faults import FaultInjector, InjectedFault
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.sim import PAPER_LATENCY_LIMIT_US, SubstrateCalibration
from repro.workload import ConstantRate, OpenLoopClient

#: Fault kinds that take the service (or part of it) down; the gap
#: until the next completed request counts as downtime.
OUTAGE_KINDS = ("process_crash", "host_crash", "crash_restart")

#: Post-window settle time: long enough for heartbeat failure
#: detection plus flush, so in-flight requests resolve to completed
#: or given-up before the books close.
DEFAULT_SETTLE_US = 1_500_000.0
DEFAULT_WARMUP_US = 150_000.0


@dataclass
class TrialContext:
    """Everything a fault load needs to schedule itself.

    Handed to the ``inject`` hook after deployment and warm-up, just
    before the workload starts.  ``t0`` is the start of the load
    window; fault times are usually expressed relative to it.
    """

    testbed: Testbed
    replicas: List[Replica]
    stacks: List[ClientStack]
    injector: FaultInjector
    config: ReplicationConfig
    duration_us: float
    t0: float
    _servants: Dict[str, Callable] = field(default_factory=dict)
    _sync_checkpoints: bool = True

    def respawn_replica(self, index: int) -> Replica:
        """Redeploy the replica at ``index`` on its original host (the
        recovery half of a crash-and-restart fault)."""
        old = self.replicas[index]
        replica = deploy_replica(
            self.testbed, old.process.host.name, self.config,
            self._servants, process_name=f"{old.process.name}+",
            sync_checkpoints=self._sync_checkpoints)
        self.replicas[index] = replica
        return replica


@dataclass
class FaultTrialResult:
    """Dependability metrics of one trial."""

    style: ReplicationStyle
    n_replicas: int
    n_clients: int
    duration_us: float
    sent: int
    completed: int
    failed: int
    late: int
    availability: float
    mean_recovery_us: float
    recovery_times_us: List[float]
    latency_mean_us: float
    jitter_us: float
    bandwidth_mbps: float
    wire_bytes: float
    injected: List[InjectedFault]
    #: Span-recorder summary (``telemetry_summary``) when the trial ran
    #: with telemetry on; None otherwise, keeping default records (and
    #: campaign JSONL) byte-identical to pre-telemetry runs.
    telemetry: Optional[Dict[str, object]] = None
    #: Journal digest (``journal_digest``) when the trial ran with the
    #: journal on; None otherwise — same byte-identical guarantee.
    journal: Optional[Dict[str, object]] = None
    #: The raw journal events of the run (for per-trial JSONL capture
    #: and the operator observatory); never serialized into metrics.
    journal_events: Optional[List[object]] = None
    #: Consistency-verification verdict (``repro.check``) when the
    #: trial ran with ``check=True``; None otherwise — same
    #: byte-identical guarantee as telemetry/journal.
    check: Optional[Dict[str, object]] = None
    #: SLO evaluation (``repro.slo``) when the trial ran with
    #: ``slo=True``: per-shard budget verdict + ledger; None otherwise
    #: — same byte-identical guarantee as telemetry/journal/check.
    slo: Optional[Dict[str, object]] = None

    @property
    def failed_fraction(self) -> float:
        return self.failed / self.sent if self.sent else 0.0

    @property
    def late_fraction(self) -> float:
        return self.late / self.completed if self.completed else 0.0

    def metrics(self) -> Dict[str, object]:
        """JSON-ready metric dict (the campaign record payload)."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "failed": self.failed,
            "late": self.late,
            "failed_fraction": self.failed_fraction,
            "late_fraction": self.late_fraction,
            "availability": self.availability,
            "mean_recovery_us": self.mean_recovery_us,
            "latency_mean_us": self.latency_mean_us,
            "jitter_us": self.jitter_us,
            "bandwidth_mbps": self.bandwidth_mbps,
            "wire_bytes": self.wire_bytes,
            "duration_us": self.duration_us,
            "faults": [
                {"kind": f.kind, "target": f.target, "at_us": f.at_us,
                 "until_us": f.until_us}
                for f in self.injected],
            **({"telemetry": self.telemetry}
               if self.telemetry is not None else {}),
            **({"journal": self.journal}
               if self.journal is not None else {}),
            **({"check": self.check}
               if self.check is not None else {}),
            **({"slo": self.slo}
               if self.slo is not None else {}),
        }


@dataclass
class PreparedTrial:
    """A deployed and warmed trial testbed, ready for its load window.

    Produced by :func:`prepare_fault_trial` — everything *before* the
    fault load and workload are scheduled, i.e. the part of a trial
    determined by (style, replicas, clients, seed, checkpoint
    interval, servant shape, recorder flags) alone.  A campaign
    sweeping fault variations over one configuration captures this
    once via :class:`repro.sim.SimSnapshot` and forks per trial
    instead of re-running the deterministic prefix.
    """

    style: ReplicationStyle
    n_replicas: int
    n_clients: int
    testbed: Testbed
    replicas: List[Replica]
    stacks: List[ClientStack]
    config: ReplicationConfig
    servants: Dict[str, Callable]
    history: Optional[object]
    check: bool
    slo: bool


def prepare_fault_trial(style: ReplicationStyle, n_replicas: int,
                        n_clients: int, seed: int = 0,
                        checkpoint_interval: int = 1,
                        warmup_us: float = DEFAULT_WARMUP_US,
                        reply_bytes: int = DEFAULT_REPLY_BYTES,
                        state_bytes: int = DEFAULT_STATE_BYTES,
                        processing_us: float = DEFAULT_PROCESSING_US,
                        calibration: Optional[SubstrateCalibration] = None,
                        telemetry: bool = False,
                        journal: bool = False,
                        check: bool = False,
                        slo: bool = False) -> PreparedTrial:
    """Deploy and warm one trial testbed (the fault-independent
    prefix of :func:`run_fault_trial`)."""
    if n_replicas < 1:
        raise ConfigurationError("trial needs at least one replica")
    if n_clients < 1:
        raise ConfigurationError("trial needs at least one client")

    if check or slo:
        journal = True  # both verdicts are computed from journal events
    if telemetry or journal:
        from dataclasses import replace
        from repro.sim import default_calibration
        calibration = calibration or default_calibration()
        if telemetry:
            calibration = replace(
                calibration,
                telemetry=replace(calibration.telemetry, enabled=True))
        if journal:
            calibration = replace(
                calibration,
                journal=replace(calibration.journal, enabled=True))
    testbed = Testbed.paper_testbed(n_replicas, max(n_clients, 1),
                                    seed=seed, calibration=calibration)
    history = None
    if check:
        from repro.check import HistoryRecorder
        history = HistoryRecorder()
        testbed.sim.history = history
    config = ReplicationConfig(
        style=style, group="svc",
        checkpoint_interval_requests=checkpoint_interval)
    servants = {"bench": _servant_factory(processing_us, reply_bytes,
                                          state_bytes)}
    replicas = deploy_replica_group(
        testbed, [f"s{i:02d}" for i in range(1, n_replicas + 1)],
        config, servants)
    stacks = [deploy_client(testbed, f"w{i:02d}", ClientReplicationConfig(
        group="svc", expected_style=style))
        for i in range(1, n_clients + 1)]
    testbed.run(warmup_us)
    return PreparedTrial(
        style=style, n_replicas=n_replicas, n_clients=n_clients,
        testbed=testbed, replicas=replicas, stacks=stacks,
        config=config, servants=servants, history=history,
        check=check, slo=slo)


def finish_fault_trial(prepared: PreparedTrial, duration_us: float,
                       rate_per_s: float,
                       deadline_us: float = PAPER_LATENCY_LIMIT_US,
                       inject: Optional[Callable[[TrialContext], None]] = None,
                       settle_us: float = DEFAULT_SETTLE_US,
                       request_bytes: int = DEFAULT_REQUEST_BYTES,
                       ) -> FaultTrialResult:
    """Run the fault-and-load suffix of a prepared trial.

    Consumes ``prepared`` — fork a fresh copy from a
    :class:`repro.sim.SimSnapshot` to run another fault variation.
    """
    if duration_us <= 0:
        raise ConfigurationError("trial duration must be positive")
    if rate_per_s <= 0:
        raise ConfigurationError("trial request rate must be positive")
    if deadline_us <= 0:
        raise ConfigurationError("deadline must be positive")

    style = prepared.style
    n_replicas = prepared.n_replicas
    n_clients = prepared.n_clients
    testbed = prepared.testbed
    replicas = prepared.replicas
    stacks = prepared.stacks
    config = prepared.config
    servants = prepared.servants
    history = prepared.history
    check = prepared.check
    slo = prepared.slo

    injector = FaultInjector(testbed.sim, testbed.network)
    context = TrialContext(
        testbed=testbed, replicas=replicas, stacks=stacks,
        injector=injector, config=config, duration_us=duration_us,
        t0=testbed.now, _servants=servants)
    if inject is not None:
        inject(context)

    loaders = [OpenLoopClient(stack, ConstantRate(rate_per_s),
                              duration_us, object_key="bench",
                              payload_bytes=request_bytes)
               for stack in stacks]
    start = testbed.now
    start_bytes = testbed.network.stats.total_bytes
    for loader in loaders:
        loader.start()
    testbed.run(duration_us + settle_us)
    window_end = start + duration_us
    wire_bytes = float(testbed.network.stats.total_bytes - start_bytes)
    elapsed = testbed.now - start

    sent = sum(l.stats.sent for l in loaders)
    completed = sum(l.stats.completed for l in loaders)
    latencies = [v for l in loaders for v in l.stats.latencies_us]
    completions = sorted(t for l in loaders
                         for t in l.stats.completion_times)
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    jitter = 0.0
    if len(latencies) > 1:
        jitter = (sum((v - mean) ** 2 for v in latencies)
                  / len(latencies)) ** 0.5

    recoveries: List[float] = []
    downtime = 0.0
    for fault in injector.injected:
        if fault.kind not in OUTAGE_KINDS or fault.at_us >= window_end:
            continue
        after = [t for t in completions if t > fault.at_us]
        if after:
            recoveries.append(after[0] - fault.at_us)
        else:
            recoveries.append(elapsed - (fault.at_us - start))
        downtime += min(recoveries[-1], window_end - fault.at_us)
    availability = max(0.0, 1.0 - downtime / duration_us)
    mean_recovery = (sum(recoveries) / len(recoveries)
                     if recoveries else 0.0)

    telemetry_digest = None
    if testbed.sim.telemetry.enabled:
        from repro.telemetry.analysis import telemetry_summary
        telemetry_digest = telemetry_summary(testbed.sim.telemetry)

    journal_events = None
    journal_summary = None
    if testbed.sim.journal.enabled:
        from repro.journal.io import journal_digest
        journal_events = list(testbed.sim.journal.events)
        journal_summary = journal_digest(testbed.sim.journal,
                                         window_start_us=start,
                                         window_end_us=window_end)

    check_digest = None
    if check:
        assert history is not None and journal_events is not None
        from repro.check import (
            IncrementSpec,
            check_invariants,
            check_linearizability,
        )
        bench_ops = tuple(op for op in history.operations
                          if op.object_key == "bench")
        violations = list(check_invariants(journal_events))
        lin = check_linearizability(bench_ops, IncrementSpec())
        check_digest = {
            "ok": bool(lin.ok and not violations),
            "operations": len(bench_ops),
            "violations": [v.to_dict() for v in violations],
            "linearizable": lin.ok,
            "linearizability_skipped": lin.skipped,
            "truncated_rings": dict(
                testbed.sim.journal.truncated_rings()),
        }

    slo_digest = None
    if slo:
        assert journal_events is not None
        slo_digest = slo_trial_digest(
            journal_events, window_start_us=start,
            window_end_us=window_end,
            registry=getattr(testbed.sim.telemetry, "metrics", None))

    return FaultTrialResult(
        style=style, n_replicas=n_replicas, n_clients=n_clients,
        duration_us=duration_us, sent=sent, completed=completed,
        failed=max(sent - completed, 0),
        late=sum(1 for v in latencies if v > deadline_us),
        availability=availability, mean_recovery_us=mean_recovery,
        recovery_times_us=recoveries, latency_mean_us=mean,
        jitter_us=jitter,
        bandwidth_mbps=wire_bytes / elapsed if elapsed > 0 else 0.0,
        wire_bytes=wire_bytes, injected=list(injector.injected),
        telemetry=telemetry_digest, journal=journal_summary,
        journal_events=journal_events, check=check_digest,
        slo=slo_digest)


def run_fault_trial(style: ReplicationStyle, n_replicas: int,
                    n_clients: int, duration_us: float,
                    rate_per_s: float, seed: int = 0,
                    checkpoint_interval: int = 1,
                    deadline_us: float = PAPER_LATENCY_LIMIT_US,
                    inject: Optional[Callable[[TrialContext], None]] = None,
                    warmup_us: float = DEFAULT_WARMUP_US,
                    settle_us: float = DEFAULT_SETTLE_US,
                    request_bytes: int = DEFAULT_REQUEST_BYTES,
                    reply_bytes: int = DEFAULT_REPLY_BYTES,
                    state_bytes: int = DEFAULT_STATE_BYTES,
                    processing_us: float = DEFAULT_PROCESSING_US,
                    calibration: Optional[SubstrateCalibration] = None,
                    telemetry: bool = False,
                    journal: bool = False,
                    check: bool = False,
                    slo: bool = False) -> FaultTrialResult:
    """Run one open-loop load window with an optional fault load.

    ``inject`` receives a :class:`TrialContext` after warm-up and may
    schedule any mix of faults against it.  Requests answered after
    ``deadline_us`` count as *late*; requests never answered (lost,
    given up, or still outstanding after the settle window) count as
    *failed*.  Availability is time-based: for every outage-kind fault
    the gap until the next completed request (capped at the window
    end) is downtime.

    ``check=True`` records the client-observed operation history and
    runs the :mod:`repro.check` verifiers over it and the journal
    (which it forces on), attaching the verdict to the result.

    ``slo=True`` evaluates the default SLO set (:mod:`repro.slo`)
    against the journal (also forced on) and attaches the error-budget
    ledger, alerts and fault/alert cross-check to the result.

    Equivalent to ``finish_fault_trial(prepare_fault_trial(...))``;
    campaigns share one prepared snapshot per configuration instead
    (see :mod:`repro.campaign.runner`).
    """
    prepared = prepare_fault_trial(
        style, n_replicas, n_clients, seed=seed,
        checkpoint_interval=checkpoint_interval, warmup_us=warmup_us,
        reply_bytes=reply_bytes, state_bytes=state_bytes,
        processing_us=processing_us, calibration=calibration,
        telemetry=telemetry, journal=journal, check=check, slo=slo)
    return finish_fault_trial(
        prepared, duration_us, rate_per_s, deadline_us=deadline_us,
        inject=inject, settle_us=settle_us,
        request_bytes=request_bytes)


def slo_trial_digest(journal_events, window_start_us: float,
                     window_end_us: float,
                     registry=None) -> Dict[str, object]:
    """Evaluate the default SLO set over one trial's journal.

    The JSON-ready digest a ``--slo`` campaign attaches to each trial
    record: verdict counters, the full per-shard budget ledger, every
    burn-rate alert, and the fault/alert consistency cross-check —
    deterministic, so serial and parallel campaign runs serialize it
    byte-identically.
    """
    from repro.slo import evaluate_slos, match_fault_alerts
    outcome = evaluate_slos(journal_events,
                            window_start_us=window_start_us,
                            window_end_us=window_end_us,
                            registry=registry)
    matches = match_fault_alerts(journal_events, outcome)
    return {
        **outcome.verdict(),
        "budgets": [b.to_dict() for b in outcome.budgets],
        "alert_log": [a.to_dict() for a in outcome.alerts],
        "cross_check": {
            "faults": len(matches),
            "consistent": sum(1 for m in matches if m.ok),
            "ok": all(m.ok for m in matches),
        },
    }
