"""Experiment scenarios: the engines behind every table and figure.

Each function assembles a testbed, drives a workload, and returns
structured results.  The benchmark suite calls these with the paper's
parameters; the examples call them with smaller ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.adaptation import AdaptationManager
from repro.core.measurements import ConfigPoint, Measurement, Profile
from repro.core.policies import ThresholdSwitchPolicy
from repro.experiments.testbed import (
    ClientStack,
    Replica,
    Testbed,
    deploy_client,
    deploy_replica_group,
)
from repro.interpose import (
    InterceptedClientTransport,
    InterceptedServerTransport,
)
from repro.orb import (
    BusyServant,
    OrbClient,
    OrbServer,
    TcpClientTransport,
    TcpServerTransport,
    TimelineAggregate,
)
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.sim import SubstrateCalibration, default_calibration
from repro.workload import (
    ClosedLoopClient,
    OpenLoopClient,
    RateProfile,
    ThinkTimeClient,
)

#: Paper default: micro-benchmark request/response sizes and state.
DEFAULT_REQUEST_BYTES = 128
DEFAULT_REPLY_BYTES = 128
DEFAULT_STATE_BYTES = 1024
DEFAULT_PROCESSING_US = 15.0


@dataclass
class ScenarioResult:
    """Aggregate outcome of one load scenario."""

    style: ReplicationStyle
    n_replicas: int
    n_clients: int
    latency_mean_us: float
    jitter_us: float
    bandwidth_mbps: float
    throughput_per_s: float
    duration_us: float
    completed: int
    #: Kernel events dispatched over the whole run (bench throughput).
    events_dispatched: int = 0
    breakdown: Dict[str, float] = field(default_factory=dict)
    per_client_latency_us: List[float] = field(default_factory=list)
    #: Cross-request per-component stats (set when timelines are kept).
    timeline_stats: Optional[TimelineAggregate] = None
    #: The run's span/metrics recorder (set when telemetry was on).
    telemetry: Optional[Any] = None
    #: The run's dependability journal (set when journaling was on).
    journal: Optional[Any] = None

    def as_measurement(self) -> Measurement:
        """Convert to a profile :class:`Measurement`."""
        return Measurement(
            config=ConfigPoint(style=self.style, n_replicas=self.n_replicas),
            n_clients=self.n_clients,
            latency_us=self.latency_mean_us,
            jitter_us=self.jitter_us,
            bandwidth_mbps=self.bandwidth_mbps,
            throughput_per_s=self.throughput_per_s)


def _servant_factory(processing_us: float, reply_bytes: int,
                     state_bytes: int):
    return lambda: BusyServant(processing_us=processing_us,
                               reply_bytes=reply_bytes,
                               state_bytes=state_bytes)


def run_replicated_load(style: ReplicationStyle, n_replicas: int,
                        n_clients: int, n_requests: int,
                        seed: int = 0,
                        request_bytes: int = DEFAULT_REQUEST_BYTES,
                        reply_bytes: int = DEFAULT_REPLY_BYTES,
                        state_bytes: int = DEFAULT_STATE_BYTES,
                        processing_us: float = DEFAULT_PROCESSING_US,
                        checkpoint_interval: int = 1,
                        keep_timelines: bool = False,
                        calibration: Optional[SubstrateCalibration] = None,
                        telemetry: bool = False,
                        journal: bool = False) -> ScenarioResult:
    """Closed-loop load (the paper's request cycle) against a
    replicated service; measures latency, jitter and bandwidth.

    ``telemetry=True`` turns on span recording for the run (overriding
    the calibration's telemetry knob); the recorder is returned on
    ``ScenarioResult.telemetry``.  ``journal=True`` likewise turns on
    the dependability event journal, returned on
    ``ScenarioResult.journal``.
    """
    if telemetry:
        base = calibration or default_calibration()
        calibration = replace(
            base, telemetry=replace(base.telemetry, enabled=True))
    if journal:
        base = calibration or default_calibration()
        calibration = replace(
            base, journal=replace(base.journal, enabled=True))
    testbed = Testbed.paper_testbed(n_replicas, n_clients, seed=seed,
                                    calibration=calibration)
    config = ReplicationConfig(
        style=style, group="svc",
        checkpoint_interval_requests=checkpoint_interval)
    replicas = deploy_replica_group(
        testbed, [f"s{i:02d}" for i in range(1, n_replicas + 1)], config,
        {"bench": _servant_factory(processing_us, reply_bytes,
                                   state_bytes)})
    stacks = [deploy_client(testbed, f"w{i:02d}", ClientReplicationConfig(
        group="svc", expected_style=style))
        for i in range(1, n_clients + 1)]
    testbed.run(150_000)

    loaders = [ClosedLoopClient(stack, n_requests, object_key="bench",
                                payload_bytes=request_bytes,
                                keep_timelines=keep_timelines)
               for stack in stacks]
    start_time = testbed.now
    start_bytes = testbed.network.stats.total_bytes
    for loader in loaders:
        loader.start()
    # Run until every client finishes its cycle; measure the window
    # up to the last completion (not the polling granularity).
    while not all(loader.done for loader in loaders):
        testbed.run(50_000)
        if testbed.now - start_time > 1e10:  # safety valve
            break
    last_completion = max((loader.stats.completion_times[-1]
                           for loader in loaders
                           if loader.stats.completion_times),
                          default=testbed.now)
    duration = max(last_completion - start_time, 1.0)
    wire_bytes = testbed.network.stats.total_bytes - start_bytes

    latencies: List[float] = []
    timelines = []
    completed = 0
    per_client = []
    for loader in loaders:
        latencies.extend(loader.stats.latencies_us)
        timelines.extend(loader.stats.timelines)
        completed += loader.stats.completed
        per_client.append(loader.stats.mean_latency_us)
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    jitter = 0.0
    if len(latencies) > 1:
        jitter = (sum((v - mean) ** 2 for v in latencies)
                  / len(latencies)) ** 0.5
    stats = TimelineAggregate().extend(timelines) if timelines else None
    return ScenarioResult(
        style=style, n_replicas=n_replicas, n_clients=n_clients,
        latency_mean_us=mean, jitter_us=jitter,
        bandwidth_mbps=wire_bytes / duration if duration > 0 else 0.0,
        throughput_per_s=(completed / duration * 1e6 if duration > 0
                          else 0.0),
        duration_us=duration, completed=completed,
        events_dispatched=testbed.sim.events_dispatched,
        breakdown=stats.breakdown() if stats else {},
        per_client_latency_us=per_client,
        timeline_stats=stats,
        telemetry=(testbed.sim.telemetry
                   if testbed.sim.telemetry.enabled else None),
        journal=(testbed.sim.journal
                 if testbed.sim.journal.enabled else None))


def build_profile(client_counts: Sequence[int] = (1, 2, 3, 4, 5),
                  replica_counts: Sequence[int] = (2, 3),
                  styles: Sequence[ReplicationStyle] = (
                      ReplicationStyle.ACTIVE,
                      ReplicationStyle.WARM_PASSIVE),
                  n_requests: int = 150, seed: int = 0,
                  **load_kwargs) -> Tuple[Profile, List[ScenarioResult]]:
    """The Fig. 7 sweep: measure every (style, replicas, clients)
    combination.  Returns the profile (for policy synthesis) plus the
    raw results."""
    profile = Profile()
    results = []
    for style in styles:
        for n_replicas in replica_counts:
            for n_clients in client_counts:
                result = run_replicated_load(
                    style, n_replicas, n_clients, n_requests,
                    seed=seed, **load_kwargs)
                profile.add(result.as_measurement())
                results.append(result)
    return profile, results


# ---------------------------------------------------------------------------
# Fig. 3 / Fig. 4: round-trip breakdown and interception overhead
# ---------------------------------------------------------------------------

def run_rtt_breakdown(n_requests: int = 500, seed: int = 0,
                      calibration: Optional[SubstrateCalibration] = None
                      ) -> Dict[str, float]:
    """Fig. 3: per-component mean round-trip contribution for one
    client and one (active) server replica."""
    result = run_replicated_load(
        ReplicationStyle.ACTIVE, n_replicas=1, n_clients=1,
        n_requests=n_requests, seed=seed, keep_timelines=True,
        calibration=calibration)
    return result.breakdown


@dataclass
class OverheadResult:
    """One bar of Fig. 4."""

    mode: str
    latency_mean_us: float
    jitter_us: float


def run_overhead_modes(n_requests: int = 300, seed: int = 0,
                       calibration: Optional[SubstrateCalibration] = None
                       ) -> Dict[str, OverheadResult]:
    """Fig. 4: baseline, interception-only modes, and single-replica
    warm passive / active."""
    out: Dict[str, OverheadResult] = {}
    for mode in ("no_interceptor", "client_intercepted",
                 "server_intercepted", "both_intercepted"):
        mean, jitter = _run_tcp_mode(
            mode, n_requests, seed=seed, calibration=calibration)
        out[mode] = OverheadResult(mode, mean, jitter)
    for mode, style in (("warm_passive_1", ReplicationStyle.WARM_PASSIVE),
                        ("active_1", ReplicationStyle.ACTIVE)):
        result = run_replicated_load(style, n_replicas=1, n_clients=1,
                                     n_requests=n_requests, seed=seed,
                                     calibration=calibration)
        out[mode] = OverheadResult(mode, result.latency_mean_us,
                                   result.jitter_us)
    return out


def _run_tcp_mode(mode: str, n_requests: int, seed: int,
                  calibration: Optional[SubstrateCalibration]
                  ) -> Tuple[float, float]:
    """A remote client-server pair over plain (optionally intercepted)
    TCP — no group communication."""
    testbed = Testbed.paper_testbed(1, 1, seed=seed,
                                    calibration=calibration)
    cal = testbed.calibration
    server_proc = testbed.spawn("s01", "srv")
    server_transport = TcpServerTransport(server_proc, testbed.network,
                                          9000, calibration=cal.orb)
    if mode in ("server_intercepted", "both_intercepted"):
        server_transport = InterceptedServerTransport(
            server_proc, server_transport, calibration=cal.interpose)
    server = OrbServer(server_proc, server_transport, calibration=cal.orb)
    server.register("bench", BusyServant(
        processing_us=DEFAULT_PROCESSING_US,
        reply_bytes=DEFAULT_REPLY_BYTES))
    address = server.start()

    client_proc = testbed.spawn("w01", "cli")
    client_transport = TcpClientTransport(client_proc, testbed.network,
                                          address, calibration=cal.orb)
    if mode in ("client_intercepted", "both_intercepted"):
        client_transport = InterceptedClientTransport(
            client_proc, client_transport, calibration=cal.interpose)
    orb_client = OrbClient(client_proc, client_transport,
                           calibration=cal.orb)

    latencies: List[float] = []

    def loop(remaining: int) -> None:
        def on_reply(reply) -> None:
            latencies.append(reply.timeline.completed_at
                             - reply.timeline.started_at)
            if remaining > 1:
                loop(remaining - 1)
        orb_client.invoke("bench", "op", 1, DEFAULT_REQUEST_BYTES,
                          on_reply)

    loop(n_requests)
    while len(latencies) < n_requests:
        testbed.run(500_000)
    mean = sum(latencies) / len(latencies)
    jitter = (sum((v - mean) ** 2 for v in latencies)
              / len(latencies)) ** 0.5
    return mean, jitter


# ---------------------------------------------------------------------------
# Fig. 6: runtime adaptive replication under a load profile
# ---------------------------------------------------------------------------

@dataclass
class AdaptiveResult:
    """Outcome of one adaptive (or static) run under a rate profile."""

    rate_series: List[Tuple[float, float]]
    style_series: List[Tuple[float, str]]
    switch_events: List
    sent: int
    completed: int
    duration_us: float
    mean_latency_us: float
    max_latency_us: float = 0.0
    #: The run's dependability journal (set when journaling was on).
    journal: Optional[Any] = None

    @property
    def observed_arrival_rate_per_s(self) -> float:
        """The paper's Fig. 6 headline metric: the request arrival
        rate observed at the server over the run (completions-driven
        for a closed feedback loop with offered retries)."""
        if self.duration_us <= 0:
            return 0.0
        return self.completed / self.duration_us * 1e6


def run_adaptive_scenario(profile: RateProfile, duration_us: float,
                          policy: Optional[ThresholdSwitchPolicy] = None,
                          static_style: Optional[ReplicationStyle] = None,
                          n_replicas: int = 3, n_clients: int = 1,
                          seed: int = 0, closed_loop: bool = True,
                          request_bytes: int = DEFAULT_REQUEST_BYTES,
                          state_bytes: int = DEFAULT_STATE_BYTES,
                          calibration: Optional[SubstrateCalibration] = None,
                          journal: bool = False) -> AdaptiveResult:
    """Drive a time-varying load against a replica group.

    With ``policy`` set, every replica runs an adaptation manager and
    the group switches styles as the rate crosses the thresholds
    (adaptive replication); with ``static_style`` set instead, the
    group stays put (the paper's static baseline).

    ``closed_loop=True`` (the paper's setup) uses think-time clients:
    the offered rate follows the profile but each client waits for its
    reply before thinking, so faster replies raise the *observed*
    arrival rate — the feedback behind the paper's +4.1 % result.
    ``closed_loop=False`` uses pure open-loop arrivals instead.
    """
    if (policy is None) == (static_style is None):
        raise ValueError("pass exactly one of policy / static_style")
    if journal:
        base = calibration or default_calibration()
        calibration = replace(
            base, journal=replace(base.journal, enabled=True))
    initial = static_style or ReplicationStyle.WARM_PASSIVE
    testbed = Testbed.paper_testbed(n_replicas, max(n_clients, 1),
                                    seed=seed, calibration=calibration)
    config = ReplicationConfig(style=initial, group="svc")
    replicas = deploy_replica_group(
        testbed, [f"s{i:02d}" for i in range(1, n_replicas + 1)], config,
        {"bench": _servant_factory(DEFAULT_PROCESSING_US,
                                   DEFAULT_REPLY_BYTES, state_bytes)})
    managers = []
    if policy is not None:
        for replica in replicas:
            managers.append(AdaptationManager(replica.replicator, policy))
    stacks = [deploy_client(testbed, f"w{i:02d}", ClientReplicationConfig(
        group="svc", expected_style=initial))
        for i in range(1, n_clients + 1)]
    testbed.run(150_000)

    if closed_loop:
        loaders = [ThinkTimeClient(stack, profile, duration_us,
                                   object_key="bench",
                                   payload_bytes=request_bytes)
                   for stack in stacks]
    else:
        loaders = [OpenLoopClient(stack, profile, duration_us,
                                  object_key="bench",
                                  payload_bytes=request_bytes)
                   for stack in stacks]
    start = testbed.now
    for loader in loaders:
        loader.start()
    style_series: List[Tuple[float, str]] = [
        (0.0, replicas[0].replicator.style.value)]

    def sample_style() -> None:
        live = [r for r in replicas if r.alive]
        if live:
            current = live[0].replicator.style.value
            if style_series[-1][1] != current:
                style_series.append((testbed.now - start, current))

    probe = testbed.sim.schedule  # alias

    def style_probe() -> None:
        sample_style()
        if testbed.now - start < duration_us + 2_000_000:
            probe(20_000, style_probe)

    style_probe()
    testbed.run(duration_us + 2_000_000)
    # Let straggler replies settle (bounded: daemon heartbeats keep
    # the event queue alive forever, so run-to-idle would not return).
    settle = 0
    while any(l.stats.completed < l.stats.sent for l in loaders) \
            and settle < 40:
        testbed.run(500_000)
        settle += 1
    duration = testbed.now - start

    rate_series: List[Tuple[float, float]] = []
    if managers:
        for t, rate in managers[0].rate_samples:
            rate_series.append((t - start, rate))
    switch_events = []
    for replica in replicas:
        if replica.alive:
            switch_events = replica.replicator.switch_history
            break
    sent = sum(l.stats.sent for l in loaders)
    completed = sum(l.stats.completed for l in loaders)
    latencies = [v for l in loaders for v in l.stats.latencies_us]
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    max_latency = max(latencies) if latencies else 0.0
    return AdaptiveResult(
        rate_series=rate_series, style_series=style_series,
        switch_events=list(switch_events),
        sent=sent, completed=completed,
        duration_us=duration,
        mean_latency_us=mean_latency,
        max_latency_us=max_latency,
        journal=(testbed.sim.journal
                 if testbed.sim.journal.enabled else None))
