"""Experiment harness shared by examples and benchmarks.

Public surface:

- :class:`Testbed` and the deploy helpers (:func:`deploy_replica`,
  :func:`deploy_replica_group`, :func:`deploy_client`)
- scenario engines: :func:`run_replicated_load`, :func:`build_profile`
  (Fig. 7 sweep), :func:`run_rtt_breakdown` (Fig. 3),
  :func:`run_overhead_modes` (Fig. 4), :func:`run_adaptive_scenario`
  (Fig. 6), :func:`run_fault_trial` (campaign trial unit)
- result records: :class:`ScenarioResult`, :class:`OverheadResult`,
  :class:`AdaptiveResult`, :class:`FaultTrialResult` with
  :class:`TrialContext`
"""

from repro.experiments.scenarios import (
    AdaptiveResult,
    DEFAULT_PROCESSING_US,
    DEFAULT_REPLY_BYTES,
    DEFAULT_REQUEST_BYTES,
    DEFAULT_STATE_BYTES,
    OverheadResult,
    ScenarioResult,
    build_profile,
    run_adaptive_scenario,
    run_overhead_modes,
    run_replicated_load,
    run_rtt_breakdown,
)
from repro.experiments.testbed import (
    ClientStack,
    Replica,
    Testbed,
    deploy_client,
    deploy_replica,
    deploy_replica_group,
)
from repro.experiments.trial import (
    FaultTrialResult,
    PreparedTrial,
    TrialContext,
    finish_fault_trial,
    prepare_fault_trial,
    run_fault_trial,
)

__all__ = [
    "AdaptiveResult",
    "ClientStack",
    "FaultTrialResult",
    "TrialContext",
    "DEFAULT_PROCESSING_US",
    "DEFAULT_REPLY_BYTES",
    "DEFAULT_REQUEST_BYTES",
    "DEFAULT_STATE_BYTES",
    "OverheadResult",
    "PreparedTrial",
    "Replica",
    "ScenarioResult",
    "Testbed",
    "build_profile",
    "deploy_client",
    "deploy_replica",
    "deploy_replica_group",
    "finish_fault_trial",
    "prepare_fault_trial",
    "run_adaptive_scenario",
    "run_fault_trial",
    "run_overhead_modes",
    "run_replicated_load",
    "run_rtt_breakdown",
]
