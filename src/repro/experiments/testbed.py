"""Testbed assembly: hosts, daemons, replicas and clients in one call.

This module recreates the paper's experimental setup — "a test-bed of
seven Intel x86 machines ... the Spread group communication system and
the TAO real-time ORB" — as a simulated :class:`Testbed`, and provides
the wiring helpers every example and benchmark uses.

Host naming: the GCS sequencer/coordinator is the lexicographically
first daemon, so server hosts are named ``s01, s02, ...`` and client
hosts ``w01, w02, ...`` — the sequencer colocates with the first
server replica, as in a well-configured Spread segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.gcs import GcsClient, GcsDaemon
from repro.net import Network
from repro.orb import OrbClient, OrbServer, Servant
from repro.replication import (
    ClientReplicationConfig,
    ClientReplicator,
    ReplicationConfig,
    ServerReplicator,
    StableStore,
)
from repro.sim import (
    Host,
    Process,
    Simulator,
    SubstrateCalibration,
    default_calibration,
)


class Testbed:
    """A simulated LAN of hosts, each running a GCS daemon."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, host_names: Sequence[str], seed: int = 0,
                 calibration: Optional[SubstrateCalibration] = None,
                 scheduler_policy: Optional[object] = None):
        if not host_names:
            raise ConfigurationError("a testbed needs at least one host")
        self.calibration = calibration or default_calibration()
        self.calibration.validate()
        self.sim = Simulator(seed=seed)
        if scheduler_policy is not None:
            # Must happen before daemons schedule their first timers:
            # the policy rewrites the kernel's tie-break sequence.
            self.sim.set_scheduler_policy(scheduler_policy)
        if self.calibration.telemetry.enabled:
            from repro.telemetry.spans import Telemetry
            self.sim.telemetry = Telemetry(
                max_spans=self.calibration.telemetry.max_spans,
                trace=self.sim.trace)
        if self.calibration.journal.enabled:
            from repro.journal.events import Journal
            self.sim.journal = Journal(
                ring_size=self.calibration.journal.ring_size,
                max_events=self.calibration.journal.max_events,
                trace=self.sim.trace)
        self.network = Network(self.sim, self.calibration.network)
        self.hosts: Dict[str, Host] = {}
        self.daemons: Dict[str, GcsDaemon] = {}
        self.store = StableStore(self.sim)
        names = list(host_names)
        for name in names:
            self.hosts[name] = self.network.add_host(
                name, calibration=self.calibration.host)
        for name in names:
            proc = Process(self.hosts[name], f"gcsd-{name}")
            self.daemons[name] = GcsDaemon(proc, self.network, names,
                                           self.calibration.gcs)

    @staticmethod
    def paper_testbed(n_server_hosts: int = 3, n_client_hosts: int = 5,
                      seed: int = 0,
                      calibration: Optional[SubstrateCalibration] = None,
                      scheduler_policy: Optional[object] = None
                      ) -> "Testbed":
        """The paper's 7-8 machine layout: server hosts sort first so
        the sequencer daemon colocates with the first replica."""
        names = ([f"s{i:02d}" for i in range(1, n_server_hosts + 1)]
                 + [f"w{i:02d}" for i in range(1, n_client_hosts + 1)])
        return Testbed(names, seed=seed, calibration=calibration,
                       scheduler_policy=scheduler_policy)

    # ------------------------------------------------------------------
    # Processes and connections
    # ------------------------------------------------------------------
    def spawn(self, host_name: str, process_name: str) -> Process:
        """Create a process on the named host."""
        return Process(self.hosts[host_name], process_name)

    def connect(self, process: Process) -> GcsClient:
        """Connect a process to its host's GCS daemon."""
        return GcsClient(process, self.daemons[process.host.name])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_us: float) -> None:
        """Advance simulated time by ``duration_us``."""
        self.sim.run(until=self.sim.now + duration_us)

    def run_until_idle(self) -> None:
        """Run until the event queue drains (unbounded)."""
        self.sim.run_until_idle()

    @property
    def now(self) -> float:
        return self.sim.now


@dataclass
class Replica:
    """One deployed server replica and its full middleware stack."""

    process: Process
    gcs: GcsClient
    replicator: ServerReplicator
    orb_server: OrbServer
    servants: Dict[str, Servant] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.process.alive

    def crash(self) -> None:
        """Process-level crash fault on this replica."""
        self.process.kill()


@dataclass
class ClientStack:
    """One deployed client and its middleware stack."""

    process: Process
    gcs: GcsClient
    replicator: ClientReplicator
    orb_client: OrbClient

    @property
    def alive(self) -> bool:
        return self.process.alive


def deploy_replica(testbed: Testbed, host_name: str,
                   config: ReplicationConfig,
                   servants: Dict[str, Callable[[], Servant]],
                   process_name: Optional[str] = None,
                   sync_checkpoints: bool = True) -> Replica:
    """Build one replica: process + GCS connection + replicator + ORB
    server + servants, started and joined to the group."""
    name = process_name or f"{config.group}@{host_name}"
    process = testbed.spawn(host_name, name)
    gcs = testbed.connect(process)
    replicator = ServerReplicator(
        gcs, config,
        replication_cal=testbed.calibration.replication,
        interpose_cal=testbed.calibration.interpose,
        store=testbed.store,
        sync_checkpoints=sync_checkpoints)
    orb_server = OrbServer(process, replicator,
                           calibration=testbed.calibration.orb)
    built: Dict[str, Servant] = {}
    for key, factory in servants.items():
        servant = factory()
        orb_server.register(key, servant)
        built[key] = servant
    replicator.bind_state_provider(orb_server)
    orb_server.start()
    return Replica(process=process, gcs=gcs, replicator=replicator,
                   orb_server=orb_server, servants=built)


def deploy_replica_group(testbed: Testbed, host_names: Sequence[str],
                         config: ReplicationConfig,
                         servants: Dict[str, Callable[[], Servant]],
                         sync_checkpoints: bool = True) -> List[Replica]:
    """Deploy one replica per host, in order (the first deployed ends
    up the longest-standing member, i.e. the primary)."""
    replicas = []
    for index, host_name in enumerate(host_names, start=1):
        replicas.append(deploy_replica(
            testbed, host_name, config, servants,
            process_name=f"{config.group}-r{index}",
            sync_checkpoints=sync_checkpoints))
        # Let each join (and state sync) settle before the next, so
        # join order — and thus the primary — is deterministic.
        testbed.run(30_000)
    return replicas


def deploy_client(testbed: Testbed, host_name: str,
                  config: ClientReplicationConfig,
                  process_name: Optional[str] = None) -> ClientStack:
    """Build one client: process + GCS connection + client replicator
    + ORB client."""
    name = process_name or f"client@{host_name}"
    process = testbed.spawn(host_name, name)
    gcs = testbed.connect(process)
    replicator = ClientReplicator(
        gcs, config, interpose_cal=testbed.calibration.interpose)
    orb_client = OrbClient(process, replicator,
                           calibration=testbed.calibration.orb)
    return ClientStack(process=process, gcs=gcs, replicator=replicator,
                       orb_client=orb_client)
