"""Regenerate the paper-vs-measured experiment report.

``python -m repro.experiments.report > EXPERIMENTS.md`` reruns every
evaluation artifact (Figs. 3, 4, 6, 7, 9; Tables 1, 2) and emits a
markdown report comparing the paper's numbers with this
reproduction's.  The benchmark suite asserts the same claims; this
module is the human-readable rendition.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.core import (
    Constraints,
    CostFunction,
    DesignSpace,
    ScalabilityPolicy,
    TABLE_1,
    ThresholdSwitchPolicy,
)
from repro.core.measurements import ConfigPoint
from repro.experiments.scenarios import (
    build_profile,
    run_adaptive_scenario,
    run_overhead_modes,
    run_rtt_breakdown,
)
from repro.replication import ReplicationStyle
from repro.sim import PAPER_FIG3_BREAKDOWN
from repro.workload import SpikeProfile

#: Paper Table 2 rows: (Ncli, config, latency us, bandwidth MB/s,
#: faults tolerated, cost).
PAPER_TABLE_2 = [
    (1, "A(3)", 1245.8, 1.074, 2, 0.268),
    (2, "A(3)", 1457.2, 2.032, 2, 0.443),
    (3, "P(3)", 4966.0, 1.887, 2, 0.669),
    (4, "P(3)", 6141.1, 2.315, 2, 0.825),
    (5, "P(2)", 6006.2, 2.799, 1, 0.895),
]

A = ReplicationStyle.ACTIVE
P = ReplicationStyle.WARM_PASSIVE


def _bench_baselines() -> dict:
    """Metrics of every committed bench baseline, keyed by profile.

    Returns an empty dict when the repository's
    ``benchmarks/baselines/`` directory is absent (e.g. an installed
    package), so the report simply omits the appendix."""
    import json
    from pathlib import Path

    baselines = {}
    root = Path(__file__).resolve().parents[3]
    directory = root / "benchmarks" / "baselines"
    if not directory.is_dir():
        return baselines
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            artifact = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        profile = artifact.get("profile")
        if profile:
            baselines[profile] = artifact.get("metrics", {})
    return baselines


def write_report(out: TextIO, n_requests: int = 150,
                 seed: int = 0) -> None:
    """Render the full paper-vs-measured markdown report to ``out``."""
    w = out.write
    w("# EXPERIMENTS — paper vs. measured\n\n")
    w("Regenerate with `python -m repro.experiments.report "
      "> EXPERIMENTS.md`.\n")
    w(f"Parameters: {n_requests} requests/client/configuration "
      f"(paper: 10,000), seed {seed}, substrate calibrated to the "
      "paper's Fig. 3 component costs (`repro.sim.config`).\n\n")
    w("Absolute numbers come from a simulated substrate, so the claim\n"
      "checked for each artifact is the paper's *shape* — who wins, by\n"
      "roughly what factor, where crossovers fall — as asserted by the\n"
      "benchmark suite (`pytest benchmarks/ --benchmark-only`).\n\n")

    # ------------------------------------------------------------------
    # Fig. 3
    # ------------------------------------------------------------------
    w("## Fig. 3 — round-trip breakdown (1 client, 1 replica)\n\n")
    breakdown = run_rtt_breakdown(n_requests=max(n_requests, 200),
                                  seed=seed)
    w("| component | paper [µs] | measured [µs] |\n|---|---|---|\n")
    for component, paper_value in PAPER_FIG3_BREAKDOWN.items():
        w(f"| {component} | {paper_value:.0f} | "
          f"{breakdown.get(component, 0.0):.0f} |\n")
    w(f"| **total** | **{sum(PAPER_FIG3_BREAKDOWN.values()):.0f}** | "
      f"**{sum(breakdown.values()):.0f}** |\n\n")
    w("Group communication dominates; the replicator adds a small "
      "overhead — both as in the paper.\n\n")

    # ------------------------------------------------------------------
    # Fig. 4
    # ------------------------------------------------------------------
    w("## Fig. 4 — overhead of the replicator\n\n")
    modes = run_overhead_modes(n_requests=max(n_requests, 200), seed=seed)
    w("| mode | mean RTT [µs] | jitter [µs] |\n|---|---|---|\n")
    for mode in ("no_interceptor", "client_intercepted",
                 "server_intercepted", "both_intercepted",
                 "warm_passive_1", "active_1"):
        bar = modes[mode]
        w(f"| {mode} | {bar.latency_mean_us:.0f} | "
          f"{bar.jitter_us:.0f} |\n")
    w("\nInterception alone is cheap; the replication mechanisms add "
      "the real latency — the paper's Fig. 4 reading.  (The paper "
      "plots absolute bars around 1000-2500 µs on its hardware.)\n\n")

    # ------------------------------------------------------------------
    # Fig. 7 sweep (feeds Table 2 and Fig. 9)
    # ------------------------------------------------------------------
    w("## Fig. 7 — latency / bandwidth trade-off sweep\n\n")
    profile, _ = build_profile(n_requests=n_requests, seed=seed)

    def cell(style, n_rep, n_cli, metric):
        return getattr(profile.get(ConfigPoint(style, n_rep), n_cli),
                       metric)

    for metric, title, fmt in (
            ("latency_us", "(a) mean round-trip latency [µs]", "{:.0f}"),
            ("bandwidth_mbps", "(b) bandwidth usage [MB/s]", "{:.3f}")):
        w(f"### {title}\n\n")
        w("| config | 1 | 2 | 3 | 4 | 5 clients |\n|---|---|---|---|---|---|\n")
        for style in (A, P):
            for n_rep in (2, 3):
                cells = " | ".join(
                    fmt.format(cell(style, n_rep, n, metric))
                    for n in (1, 2, 3, 4, 5))
                w(f"| {ConfigPoint(style, n_rep).label} | {cells} |\n")
        w("\n")
    lat_ratio = cell(P, 3, 5, "latency_us") / cell(A, 3, 5, "latency_us")
    bw_ratio = (cell(A, 3, 5, "bandwidth_mbps")
                / cell(P, 3, 5, "bandwidth_mbps"))
    w(f"- passive/active latency ratio at 5 clients: "
      f"**{lat_ratio:.2f}×** (paper: \"roughly three times slower\")\n")
    w(f"- active/passive bandwidth ratio at 5 clients: "
      f"**{bw_ratio:.2f}×** (paper: \"about twice the bandwidth\")\n")
    w("- passive latency grows almost linearly with clients; active "
      "stays comparatively flat — both as in Fig. 7(a).\n\n")

    # ------------------------------------------------------------------
    # Table 2
    # ------------------------------------------------------------------
    w("## Table 2 / Fig. 8 — scalability-knob policy\n\n")
    w("Constraints exactly as the paper: latency ≤ 7000 µs, bandwidth "
      "≤ 3 MB/s, maximize faults tolerated, ties by "
      "cost = 0.5·L/7000 + 0.5·B/3.\n\n")
    policy = ScalabilityPolicy.synthesize(profile, Constraints(),
                                          CostFunction())
    w("| Ncli | paper | paper cost | measured | measured latency [µs] "
      "| measured bw [MB/s] | faults | measured cost |\n"
      "|---|---|---|---|---|---|---|---|\n")
    for (n_cli, paper_cfg, paper_lat, paper_bw, paper_ft,
         paper_cost) in PAPER_TABLE_2:
        entry = policy.best_configuration(n_cli)
        w(f"| {n_cli} | {paper_cfg} | {paper_cost:.3f} | "
          f"{entry.config.label} | {entry.latency_us:.0f} | "
          f"{entry.bandwidth_mbps:.3f} | {entry.faults_tolerated} | "
          f"{entry.cost:.3f} |\n")
    measured_pattern = [policy.best_configuration(n).config.label
                        for n in (1, 2, 3, 4, 5)]
    paper_pattern = [row[1] for row in PAPER_TABLE_2]
    verdict = ("**exactly reproduced**" if measured_pattern == paper_pattern
               else f"mismatch: {measured_pattern}")
    w(f"\nSelected-configuration pattern {verdict}, including the drop "
      "from 2 to 1 tolerated faults at five clients.\n\n")

    # ------------------------------------------------------------------
    # Fig. 9
    # ------------------------------------------------------------------
    w("## Fig. 9 — the dependability design space\n\n")
    space = DesignSpace.from_profile(profile)
    overlap = space.regions_overlap(A, P)
    w(f"- measured configurations per style: active "
      f"{len(space.region(A))}, passive {len(space.region(P))} "
      "(each style covers a *region*, not a point)\n")
    w(f"- regions disjoint at every matched operating condition: "
      f"**{not overlap}** (paper: \"the two regions are "
      "non-overlapping\")\n")
    w(f"- covered volume of the normalized design cube: "
      f"{space.coverage_volume():.3f}\n\n")

    # ------------------------------------------------------------------
    # Fig. 6
    # ------------------------------------------------------------------
    w("## Fig. 6 — runtime adaptive replication\n\n")
    spike = SpikeProfile(base_rate=100.0, spike_rate=1100.0,
                         spike_start_us=1_500_000.0,
                         spike_end_us=5_500_000.0)
    threshold = ThresholdSwitchPolicy(rate_high_per_s=400.0,
                                      rate_low_per_s=200.0)
    adaptive = run_adaptive_scenario(spike, 7_000_000.0, policy=threshold,
                                     n_clients=2, seed=seed)
    static = run_adaptive_scenario(spike, 7_000_000.0, n_clients=2,
                                   static_style=P, seed=seed)
    gain = (adaptive.observed_arrival_rate_per_s
            / static.observed_arrival_rate_per_s - 1.0)
    w("| metric | adaptive | static passive |\n|---|---|---|\n")
    w(f"| observed arrival rate [req/s] | "
      f"{adaptive.observed_arrival_rate_per_s:.1f} | "
      f"{static.observed_arrival_rate_per_s:.1f} |\n")
    w(f"| mean latency [µs] | {adaptive.mean_latency_us:.0f} | "
      f"{static.mean_latency_us:.0f} |\n")
    w(f"| style switches | {len(adaptive.switch_events)} | 0 |\n\n")
    switch_durations = ", ".join(
        f"{r.duration_us:.0f}" for r in adaptive.switch_events)
    w(f"- switch completion times [µs]: {switch_durations} — "
      "\"comparable to the average response time\" as claimed\n")
    w(f"- observed-arrival-rate gain over static passive: "
      f"**{gain * 100:+.1f} %** (paper: +4.1 %; same direction and "
      "mechanism — faster replies let closed-loop clients send "
      "sooner — larger magnitude because our spike occupies a larger "
      "fraction of the run)\n\n")

    # ------------------------------------------------------------------
    # Table 1
    # ------------------------------------------------------------------
    w("## Table 1 — high-level to low-level knob mapping\n\n")
    w("| high-level knob | low-level knobs | application parameters |\n"
      "|---|---|---|\n")
    for name, row in TABLE_1.items():
        w(f"| {name} | {', '.join(row.low_level)} | "
          f"{', '.join(row.application_parameters)} |\n")
    w("\nStructural, as in the paper; the benchmark additionally "
      "validates behaviourally that the scalability and availability "
      "knobs drive exactly their declared low-level knobs.\n\n")

    # ------------------------------------------------------------------
    # Performance appendix (committed bench baselines)
    # ------------------------------------------------------------------
    baselines = _bench_baselines()
    if baselines:
        w("## Appendix — reproduction performance "
          "(committed bench baselines)\n\n")
        w("Same-machine throughput of the harness itself, from "
          "`benchmarks/baselines/BENCH_*.json` (quick profiles; "
          "regenerate with `python -m repro bench --quick --out-dir "
          "benchmarks/baselines`).\n\n")
        w("| measurement | value |\n|---|---|\n")
        kernel = baselines.get("kernel_events", {})
        if "speedup_vs_reference" in kernel:
            w("| kernel speedup vs. pre-optimization reference "
              f"| **{kernel['speedup_vs_reference']:.2f}×** |\n")
        check = baselines.get("check", {})
        if "schedules_per_sec" in check:
            w("| verified schedule exploration (fork-based) "
              f"| {check['schedules_per_sec']:.1f} schedules/s |\n")
        snapshot = baselines.get("snapshot", {})
        if snapshot:
            w("| warm-start: prepare / capture / fork "
              f"| {snapshot['prepare_ms']:.1f} / "
              f"{snapshot['capture_ms']:.1f} / "
              f"{snapshot['fork_ms']:.1f} ms |\n")
            w("| `repro check --explore` end-to-end "
              f"| {snapshot['explore_schedules_per_sec']:.1f} "
              "schedules/s (seed baseline before this series: "
              "33.4) |\n")
        w("\nForked runs are byte-identical to fresh runs (asserted "
          "on every bench run); see `docs/performance.md`.\n\n")

    # ------------------------------------------------------------------
    # Substitutions
    # ------------------------------------------------------------------
    w("## Substitutions\n\n")
    w("The paper's testbed (7× Pentium III / RedHat 9 / Spread "
      "3.17.01 / TAO 1.4) is replaced by a deterministic "
      "discrete-event simulation with the same architecture: per-host "
      "GCS daemons, sequencer-based total order with virtual "
      "synchrony, a GIOP-like ORB, and an interposition-based "
      "replicator.  Cost constants are calibrated to the paper's "
      "Fig. 3 measurements; see DESIGN.md for the full substitution "
      "table and rationale.\n")


def main() -> None:
    """CLI shim: write the report to stdout."""
    write_report(sys.stdout)


if __name__ == "__main__":
    main()
