"""Network substrate: switched-LAN model with byte accounting.

Public surface:

- :class:`Network` — the LAN segment; attach hosts, send frames
- :class:`Endpoint`, :class:`Frame` — addressing and on-wire units
- :class:`NetworkStats`, :class:`HostTraffic` — bandwidth accounting
- loss models: :class:`RandomLoss`, :class:`BurstLoss`,
  :class:`DelaySpike`, :class:`CompositeLoss`
- per-link topology filters: :class:`PartitionFilter`,
  :class:`AsymmetricPartition`, :class:`FlakyLink`, :class:`SlowHost`
"""

from repro.net.frame import FRAME_OVERHEAD_BYTES, Endpoint, Frame
from repro.net.loss import (
    BurstLoss,
    CompositeLoss,
    DelaySpike,
    LossModel,
    RampJitter,
    RandomLoss,
)
from repro.net.network import Network
from repro.net.stats import HostTraffic, NetworkStats, bytes_per_us_to_mbps
from repro.net.topology import (
    AsymmetricPartition,
    FlakyLink,
    LinkFilter,
    PartitionFilter,
    SlowHost,
)

__all__ = [
    "AsymmetricPartition",
    "BurstLoss",
    "CompositeLoss",
    "DelaySpike",
    "Endpoint",
    "FRAME_OVERHEAD_BYTES",
    "FlakyLink",
    "Frame",
    "HostTraffic",
    "LinkFilter",
    "LossModel",
    "Network",
    "NetworkStats",
    "PartitionFilter",
    "RampJitter",
    "RandomLoss",
    "SlowHost",
    "bytes_per_us_to_mbps",
]
