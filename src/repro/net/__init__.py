"""Network substrate: switched-LAN model with byte accounting.

Public surface:

- :class:`Network` — the LAN segment; attach hosts, send frames
- :class:`Endpoint`, :class:`Frame` — addressing and on-wire units
- :class:`NetworkStats`, :class:`HostTraffic` — bandwidth accounting
- loss models: :class:`RandomLoss`, :class:`BurstLoss`,
  :class:`DelaySpike`, :class:`CompositeLoss`
"""

from repro.net.frame import FRAME_OVERHEAD_BYTES, Endpoint, Frame
from repro.net.loss import (
    BurstLoss,
    CompositeLoss,
    DelaySpike,
    LossModel,
    RampJitter,
    RandomLoss,
)
from repro.net.network import Network
from repro.net.stats import HostTraffic, NetworkStats, bytes_per_us_to_mbps

__all__ = [
    "BurstLoss",
    "CompositeLoss",
    "DelaySpike",
    "Endpoint",
    "FRAME_OVERHEAD_BYTES",
    "Frame",
    "HostTraffic",
    "LossModel",
    "Network",
    "NetworkStats",
    "RampJitter",
    "RandomLoss",
    "bytes_per_us_to_mbps",
]
