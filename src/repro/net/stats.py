"""Network traffic accounting.

The paper's Figure 7(b) and Table 2 report *bandwidth usage* in MB/s
as the resource axis of the dependability design space.  The network
keeps per-host and aggregate byte counters, plus a time-windowed view
so monitors can observe recent throughput rather than the lifetime
average.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Tuple


@dataclass
class HostTraffic:
    """Byte/frame counters for one host."""

    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_frames: int = 0
    rx_frames: int = 0


@dataclass
class NetworkStats:
    """Aggregate and per-host traffic counters.

    ``record_transmit`` is called once per frame actually placed on the
    wire (dropped frames are counted separately so loss-injection
    experiments can report delivery ratios).
    """

    total_bytes: int = 0
    total_frames: int = 0
    dropped_frames: int = 0
    per_host: Dict[str, HostTraffic] = field(default_factory=dict)
    _window: Deque[Tuple[float, int]] = field(default_factory=deque)
    window_us: float = 1_000_000.0

    def record_transmit(self, time: float, src: str, dst: str,
                        wire_bytes: int) -> None:
        """Account one frame of ``wire_bytes`` sent from src to dst.

        Called once per frame on the wire — the counters are updated
        with single dict lookups and the window expiry inlined.
        """
        self.total_bytes += wire_bytes
        self.total_frames += 1
        per_host = self.per_host
        src_traffic = per_host.get(src)
        if src_traffic is None:
            src_traffic = per_host[src] = HostTraffic()
        dst_traffic = per_host.get(dst)
        if dst_traffic is None:
            dst_traffic = per_host[dst] = HostTraffic()
        src_traffic.tx_bytes += wire_bytes
        src_traffic.tx_frames += 1
        dst_traffic.rx_bytes += wire_bytes
        dst_traffic.rx_frames += 1
        window = self._window
        window.append((time, wire_bytes))
        cutoff = time - self.window_us
        while window[0][0] < cutoff:
            window.popleft()

    def record_drop(self) -> None:
        """Account one frame lost to fault injection or a dead host."""
        self.dropped_frames += 1

    def _host(self, name: str) -> HostTraffic:
        if name not in self.per_host:
            self.per_host[name] = HostTraffic()
        return self.per_host[name]

    def _expire(self, now: float) -> None:
        cutoff = now - self.window_us
        window = self._window
        while window and window[0][0] < cutoff:
            window.popleft()

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def bandwidth_mbps(self, now: float) -> float:
        """Recent aggregate throughput over the sliding window, in
        megabytes per second (the paper's unit)."""
        self._expire(now)
        if not self._window:
            return 0.0
        span = max(now - self._window[0][0], 1.0)
        total = sum(nbytes for _, nbytes in self._window)
        return bytes_per_us_to_mbps(total / span)

    def lifetime_bandwidth_mbps(self, now: float, since: float = 0.0) -> float:
        """Average throughput from ``since`` to ``now`` in MB/s."""
        span = now - since
        if span <= 0:
            return 0.0
        return bytes_per_us_to_mbps(self.total_bytes / span)

    def delivery_ratio(self) -> float:
        """Fraction of offered frames that made it onto the wire."""
        offered = self.total_frames + self.dropped_frames
        if offered == 0:
            return 1.0
        return self.total_frames / offered


def bytes_per_us_to_mbps(bytes_per_us: float) -> float:
    """Convert bytes/µs to megabytes/second (1 MB = 10^6 bytes).

    1 byte/µs = 10^6 bytes/s = 1 MB/s, so the conversion is the
    identity — kept as a named function so call sites stay unit-honest.
    """
    return bytes_per_us
