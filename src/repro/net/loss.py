"""Message-loss and delay models for the network substrate.

The paper's fault model includes "transient communication faults"
(Section 3.1).  A :class:`LossModel` decides, per frame, whether the
frame is dropped and how much extra delay it suffers; models compose
so a base random-loss floor can be combined with injected loss bursts.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple


class LossModel:
    """Base model: lossless, no extra delay."""

    def judge(self, now: float, rng: random.Random) -> Tuple[bool, float]:
        """Return ``(dropped, extra_delay_us)`` for a frame sent now."""
        return False, 0.0


class RandomLoss(LossModel):
    """Drop each frame independently with probability ``rate``."""

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate

    def judge(self, now: float, rng: random.Random) -> Tuple[bool, float]:
        """See :meth:`LossModel.judge`."""
        return rng.random() < self.rate, 0.0


class BurstLoss(LossModel):
    """Drop frames with ``rate`` only inside [start_us, end_us).

    Models a transient communication fault: a loss burst on the LAN
    during a bounded window.
    """

    def __init__(self, start_us: float, end_us: float, rate: float = 1.0):
        if end_us <= start_us:
            raise ValueError("burst end must be after start")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.start_us = start_us
        self.end_us = end_us
        self.rate = rate

    def judge(self, now: float, rng: random.Random) -> Tuple[bool, float]:
        """See :meth:`LossModel.judge`."""
        if self.start_us <= now < self.end_us:
            return rng.random() < self.rate, 0.0
        return False, 0.0


class DelaySpike(LossModel):
    """Add ``extra_us`` of delay to frames inside a window.

    Models the paper's "performance and timing faults": messages still
    arrive but late enough to trip timeouts.
    """

    def __init__(self, start_us: float, end_us: float, extra_us: float):
        if end_us <= start_us:
            raise ValueError("spike end must be after start")
        if extra_us < 0:
            raise ValueError("extra delay must be non-negative")
        self.start_us = start_us
        self.end_us = end_us
        self.extra_us = extra_us

    def judge(self, now: float, rng: random.Random) -> Tuple[bool, float]:
        """See :meth:`LossModel.judge`."""
        if self.start_us <= now < self.end_us:
            return False, self.extra_us
        return False, 0.0


class RampJitter(LossModel):
    """Random extra delay whose amplitude ramps up over a window.

    Models a *gradually* degrading network (growing congestion): each
    frame inside [start_us, end_us) gets a uniform extra delay in
    ``[0, peak_extra_us * progress]`` where progress ramps 0 -> 1
    across the window.  The gradual onset is what distinguishes an
    adaptive failure detector (which learns the widening inter-arrival
    distribution) from a fixed timeout (which false-suspects as soon
    as one gap crosses the threshold).
    """

    def __init__(self, start_us: float, end_us: float,
                 peak_extra_us: float):
        if end_us <= start_us:
            raise ValueError("window end must be after start")
        if peak_extra_us < 0:
            raise ValueError("peak extra delay must be non-negative")
        self.start_us = start_us
        self.end_us = end_us
        self.peak_extra_us = peak_extra_us

    def judge(self, now: float, rng: random.Random) -> Tuple[bool, float]:
        """See :meth:`LossModel.judge`."""
        if not self.start_us <= now < self.end_us:
            return False, 0.0
        progress = (now - self.start_us) / (self.end_us - self.start_us)
        return False, rng.uniform(0.0, self.peak_extra_us * progress)


class CompositeLoss(LossModel):
    """Combine models: dropped if any model drops; delays add up."""

    def __init__(self, models: Optional[List[LossModel]] = None):
        self.models: List[LossModel] = list(models or [])

    def add(self, model: LossModel) -> None:
        """Append a component model."""
        self.models.append(model)

    def remove(self, model: LossModel) -> None:
        """Remove a component model (no-op if absent)."""
        if model in self.models:
            self.models.remove(model)

    def judge(self, now: float, rng: random.Random) -> Tuple[bool, float]:
        """Combine all component verdicts."""
        dropped = False
        delay = 0.0
        for model in self.models:
            d, extra = model.judge(now, rng)
            dropped = dropped or d
            delay += extra
        return dropped, delay
