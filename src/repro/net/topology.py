"""Per-link topology fault models: partitions and gray failures.

The global :mod:`repro.net.loss` models treat the LAN as one shared
medium — every frame rolls the same dice.  Real dependability work
needs the faults that *differ per link*: a switch splitting the
network into components, a one-way reachability failure, a single
flaky cable, or a host that is merely *slow* (the classic gray
failure: up, pingable, useless).  A :class:`LinkFilter` judges each
frame by its ``(src_host, dst_host)`` pair inside a bounded window;
filters compose with the global loss models and with each other.

Determinism: filters only consume simulator RNG when they actually
need randomness for a frame on a targeted link inside their window
(:class:`FlakyLink`), so installing a filter whose window never
overlaps traffic leaves the RNG stream — and therefore the journal —
byte-identical to a run without it.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Tuple


class LinkFilter:
    """Base per-link filter: passes every frame untouched."""

    #: Inclusive start / exclusive end of the active window.
    start_us: float
    end_us: float

    def judge(self, src: str, dst: str, now: float,
              rng: random.Random) -> Tuple[bool, float]:
        """Return ``(dropped, extra_delay_us)`` for one frame."""
        return False, 0.0


class PartitionFilter(LinkFilter):
    """Symmetric network split: frames crossing component boundaries
    are dropped inside the window; the split heals at ``end_us``.

    ``components`` is a tuple of disjoint host-name sets covering the
    hosts the partition affects.  Hosts absent from every component
    are unaffected (they can still reach everyone) — the injector
    resolves the full component cover before installing the filter, so
    in practice every attached host belongs to exactly one component.
    """

    def __init__(self, components: Tuple[FrozenSet[str], ...],
                 start_us: float, end_us: float):
        if len(components) < 2:
            raise ValueError("a partition needs at least two components")
        seen: set = set()
        for component in components:
            if not component:
                raise ValueError("empty partition component")
            if seen & component:
                raise ValueError("partition components must be disjoint")
            seen |= component
        if end_us <= start_us:
            raise ValueError("partition must heal after it starts")
        self.components = components
        self.start_us = start_us
        self.end_us = end_us
        self._side = {host: i for i, component in enumerate(components)
                      for host in component}

    def judge(self, src: str, dst: str, now: float,
              rng: random.Random) -> Tuple[bool, float]:
        """Drop frames between different components in the window."""
        if not self.start_us <= now < self.end_us:
            return False, 0.0
        side = self._side
        a = side.get(src)
        b = side.get(dst)
        return a is not None and b is not None and a != b, 0.0


class AsymmetricPartition(LinkFilter):
    """One-way reachability failure: ``src_hosts`` cannot reach
    ``dst_hosts`` inside the window, while the reverse direction (and
    every other pair) still works — the half-open links that make
    gray-failure diagnosis hard."""

    def __init__(self, src_hosts: FrozenSet[str],
                 dst_hosts: FrozenSet[str],
                 start_us: float, end_us: float):
        if not src_hosts or not dst_hosts:
            raise ValueError("asymmetric partition sides must be non-empty")
        if end_us <= start_us:
            raise ValueError("partition must heal after it starts")
        self.src_hosts = src_hosts
        self.dst_hosts = dst_hosts
        self.start_us = start_us
        self.end_us = end_us

    def judge(self, src: str, dst: str, now: float,
              rng: random.Random) -> Tuple[bool, float]:
        """Drop frames travelling src-side -> dst-side in the window."""
        if not self.start_us <= now < self.end_us:
            return False, 0.0
        return src in self.src_hosts and dst in self.dst_hosts, 0.0


class FlakyLink(LinkFilter):
    """Per-link Bernoulli loss: each frame on the ``a``/``b`` pair is
    dropped with probability ``rate`` inside the window.  Symmetric by
    default; pass ``symmetric=False`` for one direction (``a -> b``)
    only."""

    def __init__(self, a: str, b: str, rate: float,
                 start_us: float, end_us: float,
                 symmetric: bool = True):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        if end_us <= start_us:
            raise ValueError("flaky window must end after it starts")
        self.a = a
        self.b = b
        self.rate = rate
        self.start_us = start_us
        self.end_us = end_us
        self.symmetric = symmetric

    def judge(self, src: str, dst: str, now: float,
              rng: random.Random) -> Tuple[bool, float]:
        """Roll the dice only for frames on the targeted link."""
        if not self.start_us <= now < self.end_us:
            return False, 0.0
        on_link = (src == self.a and dst == self.b) or (
            self.symmetric and src == self.b and dst == self.a)
        if not on_link:
            return False, 0.0
        return rng.random() < self.rate, 0.0


class SlowHost(LinkFilter):
    """Gray failure: every frame into or out of ``host`` suffers
    ``extra_us`` of delay inside the window.  The host stays up and
    reachable — just late — which is exactly the fault class a binary
    crash detector mishandles."""

    def __init__(self, host: str, extra_us: float,
                 start_us: float, end_us: float):
        if extra_us < 0:
            raise ValueError("extra delay must be non-negative")
        if end_us <= start_us:
            raise ValueError("slow window must end after it starts")
        self.host = host
        self.extra_us = extra_us
        self.start_us = start_us
        self.end_us = end_us

    def judge(self, src: str, dst: str, now: float,
              rng: random.Random) -> Tuple[bool, float]:
        """Delay all ingress and egress of the slow host."""
        if not self.start_us <= now < self.end_us:
            return False, 0.0
        if src == self.host or dst == self.host:
            return False, self.extra_us
        return False, 0.0
