"""Switched-LAN network model.

Models the paper's testbed LAN: hosts attached to one switch, frame
delay = propagation + transmission (size/bandwidth) + uniform jitter,
with optional loss/delay fault models.  Frames to the same host take a
cheap loopback path.  All traffic is accounted in :class:`NetworkStats`
for the bandwidth axis of the design space.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.errors import NetworkError
from repro.net.frame import Endpoint, Frame
from repro.net.loss import CompositeLoss, LossModel
from repro.net.topology import LinkFilter
from repro.net.stats import NetworkStats
from repro.sim.config import NetworkCalibration
from repro.sim.host import Host
from repro.sim.kernel import Simulator


class Network:
    """A single switched LAN segment connecting :class:`Host` objects."""

    def __init__(self, sim: Simulator,
                 calibration: Optional[NetworkCalibration] = None):
        self.sim = sim
        self.calibration = calibration or NetworkCalibration()
        self.calibration.validate()
        self.hosts: Dict[str, Host] = {}
        self.stats = NetworkStats()
        self.loss = CompositeLoss()
        #: Per-link topology filters (partitions, flaky links, slow
        #: hosts) judged by ``(src_host, dst_host)``; empty on the hot
        #: path, see :meth:`transmit`.
        self.topology: list = []
        self._frame_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, host: Host) -> Host:
        """Attach a host to this LAN."""
        if host.name in self.hosts:
            raise NetworkError(f"host name already attached: {host.name}")
        if host.network is not None:
            raise NetworkError(f"host {host.name} already on a network")
        self.hosts[host.name] = host
        host.network = self
        return host

    def host(self, name: str) -> Host:
        """Look up an attached host by name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host: {name}") from None

    def add_host(self, name: str, **host_kwargs) -> Host:
        """Create a host and attach it in one step."""
        return self.attach(Host(self.sim, name, **host_kwargs))

    # ------------------------------------------------------------------
    # Fault models
    # ------------------------------------------------------------------
    def add_loss_model(self, model: LossModel) -> None:
        """Install a loss/delay fault model on the segment."""
        self.loss.add(model)

    def remove_loss_model(self, model: LossModel) -> None:
        """Uninstall a loss/delay fault model."""
        self.loss.remove(model)

    def add_link_filter(self, filt: LinkFilter) -> None:
        """Install a per-link topology filter (partition, flaky link,
        slow host)."""
        self.topology.append(filt)

    def remove_link_filter(self, filt: LinkFilter) -> None:
        """Uninstall a topology filter (no-op if absent)."""
        if filt in self.topology:
            self.topology.remove(filt)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: Endpoint, dst: Endpoint, payload: object,
             payload_bytes: int, kind: str = "data") -> None:
        """Transmit one frame from ``src`` to ``dst``.

        Delivery is asynchronous; frames to dead or unknown hosts are
        dropped silently (datagram semantics — reliability is the
        group-communication layer's job, as in Spread).
        """
        frame = Frame(src=src, dst=dst, payload=payload,
                      payload_bytes=payload_bytes, kind=kind,
                      frame_id=next(self._frame_ids))
        self.transmit(frame)

    def transmit(self, frame: Frame) -> None:
        """Place a prepared frame on the wire."""
        sim = self.sim
        hosts = self.hosts
        src_name = frame.src.host
        dst_name = frame.dst.host
        src_host = hosts.get(src_name)
        dst_host = hosts.get(dst_name)
        if src_host is None:
            raise NetworkError(f"unknown source host: {src_name}")
        if not src_host.alive:
            # A dead host cannot transmit; this is not an error because
            # in-flight callbacks may race with a crash.
            self.stats.record_drop()
            return
        if dst_host is None or not dst_host.alive:
            self.stats.record_drop()
            return

        if self.loss.models:
            dropped, extra_delay = self.loss.judge(sim.now, sim.rng)
            if dropped:
                self.stats.record_drop()
                sim.trace.record(sim.now, "net.drop",
                                 f"frame {frame.src} -> {frame.dst} lost",
                                 kind=frame.kind)
                return
        else:
            # Fast path: with no fault models installed the composite
            # verdict is always (False, 0.0) and consumes no rng, so
            # skipping the call is behaviour-identical.
            extra_delay = 0.0

        if self.topology and src_name != dst_name:
            # Per-link topology plane.  Loopback frames never cross a
            # link, so they bypass the filters; with no filters
            # installed this branch costs one falsy check.  Filters
            # only consume rng for frames they actually randomize
            # (FlakyLink in-window on its link), keeping the stream —
            # and the journal — byte-identical otherwise.
            for filt in self.topology:
                f_dropped, f_extra = filt.judge(src_name, dst_name,
                                                sim.now, sim.rng)
                if f_dropped:
                    self.stats.record_drop()
                    sim.trace.record(sim.now, "net.filter",
                                     f"frame {frame.src} -> {frame.dst} "
                                     f"cut by {type(filt).__name__}",
                                     kind=frame.kind)
                    return
                extra_delay += f_extra

        wire_bytes = frame.wire_bytes
        self.stats.record_transmit(sim.now, src_name, dst_name, wire_bytes)
        policy = sim.scheduler_policy
        if policy is not None:
            # Schedule-space exploration: the checker's policy may add
            # a bounded extra delay per frame, perturbing delivery
            # interleavings the way a real LAN's queueing would.
            extra_delay += policy.message_delay(wire_bytes)
        cal = self.calibration
        if src_name == dst_name:
            delay = cal.local_loopback_us
        else:
            # jitter_us * random() is bit-identical to the old
            # uniform(0, jitter_us): the library computes a+(b-a)*random().
            delay = (cal.propagation_us
                     + wire_bytes / cal.bandwidth_bytes_per_us
                     + cal.jitter_us * sim.rng.random())
        sim.schedule_fast(delay + extra_delay, dst_host.deliver,
                          frame.dst.port, frame)

    def _delay_us(self, frame: Frame, local: bool) -> float:
        """Reference delay model (the hot path above inlines this)."""
        cal = self.calibration
        if local:
            return cal.local_loopback_us
        transmission = frame.wire_bytes / cal.bandwidth_bytes_per_us
        jitter = self.sim.rng.uniform(0.0, cal.jitter_us)
        return cal.propagation_us + transmission + jitter

    def __repr__(self) -> str:
        return f"<Network hosts={sorted(self.hosts)}>"
