"""Network frames.

A :class:`Frame` is what the simulated LAN actually carries: an opaque
payload plus explicit source/destination addressing and an on-wire
size.  Byte sizes are modelled explicitly (rather than serializing
real Python objects) because the paper's evaluation measures bandwidth
in MB/s — the resource axis of the design space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import NetworkError

#: Fixed Ethernet + IP + UDP framing overhead charged per frame.
FRAME_OVERHEAD_BYTES = 54


@dataclass(frozen=True, slots=True)
class Endpoint:
    """A (host, port) network address."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True, slots=True)
class Frame:
    """One frame on the wire.

    ``payload_bytes`` is the application-level size; the network adds
    :data:`FRAME_OVERHEAD_BYTES` when computing transmission delay and
    bandwidth accounting.
    """

    src: Endpoint
    dst: Endpoint
    payload: Any
    payload_bytes: int = 0
    kind: str = "data"
    frame_id: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise NetworkError(
                f"negative payload size: {self.payload_bytes}")

    @property
    def wire_bytes(self) -> int:
        """Total bytes this frame occupies on the wire."""
        return self.payload_bytes + FRAME_OVERHEAD_BYTES
