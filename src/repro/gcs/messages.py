"""Wire-level message types of the group-communication system.

The GCS plays the role of the Spread toolkit in the paper: daemons run
one per host, application processes connect to their local daemon, and
daemons exchange the control/data messages defined here over the
simulated LAN.

Naming follows Spread's service grades: ``UNRELIABLE`` (best effort),
``FIFO`` (by sender), ``CAUSAL``, ``AGREED`` (total order) and ``SAFE``
(total order with all-daemons-hold-a-copy delivery).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class Grade(enum.Enum):
    """Message-delivery guarantee, per Spread's service grades.

    SAFE is Spread's strongest grade: a message is delivered only
    once every member's daemon holds a copy, so a delivered message
    can never be "known" by only a subset that then dies.
    """

    UNRELIABLE = "unreliable"
    FIFO = "fifo"
    CAUSAL = "causal"
    AGREED = "agreed"
    SAFE = "safe"

    @property
    def reliable(self) -> bool:
        return self is not Grade.UNRELIABLE

    @property
    def totally_ordered(self) -> bool:
        return self in (Grade.AGREED, Grade.SAFE)


@dataclass(frozen=True, order=True, slots=True)
class MemberId:
    """Identity of a connected process: (host, pid, name).

    Ordering is total and identical at every daemon, which the
    replication layer relies on for deterministic primary election.
    """

    host: str
    pid: int
    name: str

    def __str__(self) -> str:
        return f"{self.name}#{self.pid}@{self.host}"


@dataclass(frozen=True, slots=True)
class GroupView:
    """Membership of one group as installed at some point in the
    totally-ordered message stream.

    ``members`` is in **join order** (identical at every daemon), so
    ``members[0]`` is the longest-standing member — the deterministic
    leader/primary choice the replication layer uses.
    """

    group: str
    view_id: int
    members: Tuple[MemberId, ...]

    def __contains__(self, member: MemberId) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)

    def oldest(self) -> Optional[MemberId]:
        """The longest-standing member (deterministic leader choice)."""
        return self.members[0] if self.members else None


@dataclass(frozen=True, slots=True)
class DaemonView:
    """Membership of the daemon layer itself (one entry per live host)."""

    view_id: int
    members: Tuple[str, ...]

    def __contains__(self, host: str) -> bool:
        return host in self.members

    def coordinator(self) -> str:
        """Lowest-named live daemon: view coordinator and sequencer."""
        return min(self.members)


# ---------------------------------------------------------------------------
# Daemon-to-daemon payloads.  All reliable traffic is wrapped in
# LinkData/LinkAck by the reliable-link layer; heartbeats and
# best-effort data travel as raw frames.
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Periodic liveness beacon between daemons."""

    sender: str
    view_id: int


@dataclass(frozen=True, slots=True)
class LinkData:
    """Reliable-link envelope: per-(src,dst) sequence number."""

    link_seq: int
    inner: Any
    inner_bytes: int


@dataclass(frozen=True, slots=True)
class LinkAck:
    """Cumulative acknowledgement for a reliable link."""

    cum_seq: int


class _CarriesTrace:
    """Mixin for payload-bearing wrappers: expose the telemetry trace
    context of the wrapped application message.

    Duck-typed read-through — replication payloads (RepRequest /
    RepReply) define ``trace_context``; control traffic and raw test
    payloads do not and yield None.  This is the GCS half of trace
    propagation: daemons look here to join a frame to its trace
    without understanding the payload.
    """

    # Keep subclasses __dict__-free: a slotted dataclass inheriting
    # from a slotless base would silently grow a per-instance dict.
    __slots__ = ()

    @property
    def trace_context(self):
        inner = getattr(self, "payload", None)
        return getattr(inner, "trace_context", None)


@dataclass(frozen=True, slots=True)
class Forward(_CarriesTrace):
    """Origin daemon asks the sequencer to stamp a totally-ordered
    message (AGREED, or SAFE when ``safe`` is set)."""

    group: str
    origin: MemberId
    payload: Any
    payload_bytes: int
    msg_id: str
    safe: bool = False


class StampKind(enum.Enum):
    """Kind of a totally-ordered group event."""
    DATA = "data"
    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True, slots=True)
class Stamped(_CarriesTrace):
    """A sequencer-ordered event in a group's total-order stream.

    ``seq`` is contiguous per group.  JOIN/LEAVE stamps are routed to
    every daemon (they update routing state); DATA stamps go only to
    daemons hosting members.  SAFE stamps are held back at the
    receivers until the sequencer confirms every member daemon has a
    copy (the SafeAck / SafeRelease exchange).
    """

    group: str
    seq: int
    kind: StampKind
    origin: MemberId
    payload: Any = None
    payload_bytes: int = 0
    msg_id: str = ""
    safe: bool = False
    crashed: bool = False


@dataclass(frozen=True, slots=True)
class SafeAck:
    """Member daemon -> sequencer: 'I hold SAFE stamp (group, seq)'."""

    group: str
    seq: int
    sender: str


@dataclass(frozen=True, slots=True)
class SafeRelease:
    """Sequencer -> member daemons: every member daemon holds the
    SAFE stamp; deliver it."""

    group: str
    seq: int


@dataclass(frozen=True, slots=True)
class JoinRequest:
    group: str
    member: MemberId
    msg_id: str


@dataclass(frozen=True, slots=True)
class LeaveRequest:
    """``crashed`` distinguishes a failure-detected leave (a dead local
    connection, as when Spread notices a client died) from a voluntary
    one; the flag rides the totally-ordered stamp so every daemon
    installs the same view with the same cause."""

    group: str
    member: MemberId
    msg_id: str
    crashed: bool = False


@dataclass(frozen=True, slots=True)
class Direct(_CarriesTrace):
    """Point-to-point message between connected processes."""

    dst: MemberId
    src: MemberId
    payload: Any
    payload_bytes: int


@dataclass(frozen=True, slots=True)
class FifoData(_CarriesTrace):
    """Sender-ordered group data (FIFO grade), multicast directly by
    the origin daemon over reliable links."""

    group: str
    origin: MemberId
    payload: Any
    payload_bytes: int


@dataclass(frozen=True, slots=True)
class CausalData(_CarriesTrace):
    """Causally-ordered group data: vector clock keyed by origin host."""

    group: str
    origin: MemberId
    clock: Dict[str, int]
    payload: Any
    payload_bytes: int


@dataclass(frozen=True, slots=True)
class RawData(_CarriesTrace):
    """Best-effort group data: one unreliable frame per member daemon."""

    group: str
    origin: MemberId
    payload: Any
    payload_bytes: int


# ---------------------------------------------------------------------------
# View-change (flush) protocol payloads.
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class FlushRequest:
    """Coordinator proposes a new daemon view; recipients must stop
    sending application data and report their per-group progress.

    ``proposer_view_id`` is the proposer's installed daemon view at
    proposal time.  A wedged (minority-partition) daemon compares it
    against its own: a higher value proves the majority installed
    views it missed, so its local state is stale — it acks with empty
    histories and waits for the coordinator's :class:`GroupSnapshot`
    instead of polluting the union cut with forked stamps.
    """

    epoch: int
    proposer: str
    members: Tuple[str, ...]
    proposer_view_id: int = 0


@dataclass(frozen=True, slots=True)
class FlushAck:
    """A daemon's reply to FlushRequest.

    ``histories`` maps group -> {seq: Stamped} for recently received
    stamps, letting the coordinator rebuild the union cut.
    ``next_seqs`` maps group -> next unassigned sequencer seq as known
    to this daemon (max stamp seen + 1).
    """

    epoch: int
    sender: str
    histories: Dict[str, Dict[int, Stamped]]
    next_seqs: Dict[str, int]


@dataclass(frozen=True, slots=True)
class ViewInstall:
    """Coordinator finalizes the view change.

    ``recovery`` maps group -> list of Stamped that every surviving
    daemon must apply (in seq order) before installing the view, so
    that all survivors deliver the same set of messages in the old
    view (virtual synchrony).  ``next_seqs`` seeds the new sequencer.
    """

    epoch: int
    view: DaemonView
    recovery: Dict[str, List[Stamped]]
    next_seqs: Dict[str, int]


@dataclass(frozen=True, slots=True)
class RejoinRequest:
    """A wedged daemon probes a peer after a suspected partition.

    Sent as a raw (unreliable) frame, periodically, to every
    unreachable peer while wedged: once the partition heals, the copy
    that reaches the majority coordinator triggers a merge flush whose
    proposal includes the sender.  ``view_id`` is the sender's last
    installed daemon view, so the coordinator can tell a stale
    rejoiner from an echo of its own component.
    """

    sender: str
    view_id: int


@dataclass(frozen=True, slots=True)
class GroupSnapshot:
    """Coordinator -> rejoiner, ahead of the merge ViewInstall.

    A daemon re-admitted after a partition cannot trust its own group
    state: while it was wedged the majority removed its members and
    kept stamping, so flush-history recovery alone cannot rebuild
    membership.  The snapshot carries the authoritative per-group
    state — members in join order, view id, last stamp seq, and the
    recent stamp window for duplicate suppression — which the rejoiner
    adopts wholesale before applying the install; its own (stale,
    possibly forked) state is discarded.
    """

    epoch: int
    #: group -> (members in join order, view_id, last_seq)
    groups: Dict[str, Tuple[Tuple[MemberId, ...], int, int]]
    #: group -> recent Stamped window (duplicate suppression + history)
    recent: Dict[str, List[Stamped]]
    #: group -> causal vector clock (keyed by origin host)
    causal_clocks: Dict[str, Dict[str, int]]


def estimate_control_bytes(message: Any) -> int:
    """On-wire size estimate for control messages without a payload
    size of their own (flush traffic, acks, heartbeats)."""
    if isinstance(message, (Heartbeat, LinkAck)):
        return 16
    if isinstance(message, (SafeAck, SafeRelease)):
        return 28
    if isinstance(message, (JoinRequest, LeaveRequest)):
        return 64
    if isinstance(message, RejoinRequest):
        return 24
    if isinstance(message, FlushRequest):
        return 48 + 16 * len(message.members)
    if isinstance(message, GroupSnapshot):
        total = 64
        for members, _view_id, _last in message.groups.values():
            total += 32 + 16 * len(members)
        for stamps in message.recent.values():
            for stamped in stamps:
                total += 48 + stamped.payload_bytes
        for clock in message.causal_clocks.values():
            total += 12 * len(clock)
        return total
    if isinstance(message, FlushAck):
        total = 64
        for history in message.histories.values():
            for stamped in history.values():
                total += 48 + stamped.payload_bytes
        return total
    if isinstance(message, ViewInstall):
        total = 64 + 16 * len(message.view.members)
        for stamps in message.recovery.values():
            for stamped in stamps:
                total += 48 + stamped.payload_bytes
        return total
    return 32
