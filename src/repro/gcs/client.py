"""Client-side API of the group-communication system.

A process creates one :class:`GcsClient` connected to the daemon on
its own host (the Spread model).  The client can join groups, watch
group membership without joining (open-group semantics), multicast
with any service grade, and exchange point-to-point messages with any
connected process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import GroupCommunicationError
from repro.gcs.daemon import ClientPort, GcsDaemon
from repro.gcs.messages import Grade, GroupView, MemberId
from repro.sim.actor import Actor
from repro.sim.host import Process


class GroupListener:
    """Callbacks for one group membership.

    Subclass or duck-type; default implementations ignore events.
    """

    def on_message(self, group: str, sender: MemberId, payload: Any,
                   nbytes: int) -> None:
        """A group multicast was delivered."""

    def on_view(self, view: GroupView, joined: List[MemberId],
                left: List[MemberId], crashed: bool) -> None:
        """Group membership changed.  ``crashed`` is True when the
        change was caused by a daemon/host failure rather than a
        voluntary leave."""


class CallbackListener(GroupListener):
    """Adapter building a listener from plain callables."""

    def __init__(self,
                 on_message: Optional[Callable[..., None]] = None,
                 on_view: Optional[Callable[..., None]] = None):
        self._on_message = on_message
        self._on_view = on_view

    def on_message(self, group: str, sender: MemberId, payload: Any,
                   nbytes: int) -> None:
        """Forward to the ``on_message`` callable, if given."""
        if self._on_message is not None:
            self._on_message(group, sender, payload, nbytes)

    def on_view(self, view: GroupView, joined: List[MemberId],
                left: List[MemberId], crashed: bool) -> None:
        """Forward to the ``on_view`` callable, if given."""
        if self._on_view is not None:
            self._on_view(view, joined, left, crashed)


class GcsClient(Actor, ClientPort):
    """A process's connection to its local GCS daemon."""

    def __init__(self, process: Process, daemon: GcsDaemon):
        super().__init__(process, name=f"gcs:{process.name}")
        if daemon.host is not process.host:
            raise GroupCommunicationError(
                f"{process.name} must connect to the daemon on its own "
                f"host ({process.host.name}), not {daemon.host.name}")
        self.daemon = daemon
        self.member = MemberId(host=process.host.name, pid=process.pid,
                               name=process.name)
        self._listeners: Dict[str, GroupListener] = {}
        self._watch_listeners: Dict[str, GroupListener] = {}
        self._direct_handler: Optional[Callable[[MemberId, Any, int], None]] = None
        self._views: Dict[str, GroupView] = {}
        daemon.connect(self)

    # ------------------------------------------------------------------
    # Group operations
    # ------------------------------------------------------------------
    def join(self, group: str, listener: GroupListener) -> None:
        """Join ``group``; deliveries flow to ``listener``."""
        if group in self._listeners:
            raise GroupCommunicationError(
                f"{self.member} already joining/joined {group}")
        self._listeners[group] = listener
        self.daemon.client_join(group, self.member)

    def leave(self, group: str) -> None:
        """Leave ``group`` (listener dropped after the leave is stamped)."""
        if group not in self._listeners:
            raise GroupCommunicationError(f"{self.member} not in {group}")
        self.daemon.client_leave(group, self.member)

    def watch(self, group: str, listener: GroupListener) -> None:
        """Receive ``group`` view changes without becoming a member."""
        self._watch_listeners[group] = listener
        self.daemon.client_watch(group, self.member)

    def multicast(self, group: str, payload: Any, nbytes: int,
                  grade: Grade = Grade.AGREED) -> None:
        """Multicast to ``group`` (membership not required: open groups)."""
        if nbytes < 0:
            raise GroupCommunicationError(f"negative payload size {nbytes}")
        self._count("gcs_sent_total", kind="multicast")
        self.daemon.client_multicast(group, self.member, payload, nbytes,
                                     grade)

    def send_direct(self, dst: MemberId, payload: Any, nbytes: int) -> None:
        """Reliable point-to-point message to another connected process."""
        self._count("gcs_sent_total", kind="direct")
        self.daemon.client_send_direct(self.member, dst, payload, nbytes)

    def _count(self, name: str, **extra: str) -> None:
        """Bump a telemetry counter (no-op when telemetry is off)."""
        registry = getattr(self.sim.telemetry, "metrics", None)
        if registry is not None:
            registry.counter(name, host=self.process.host.name,
                             process=self.process.name, **extra).inc()

    def on_direct(self, handler: Callable[[MemberId, Any, int], None]) -> None:
        """Install the handler for incoming point-to-point messages."""
        self._direct_handler = handler

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def current_view(self, group: str) -> Optional[GroupView]:
        """Most recent view delivered to this client for ``group``."""
        return self._views.get(group)

    @property
    def joined_groups(self) -> List[str]:
        return sorted(self._listeners)

    # ------------------------------------------------------------------
    # ClientPort (called by the daemon, post-IPC-delay)
    # ------------------------------------------------------------------
    def deliver_message(self, group: str, sender: MemberId, payload: Any,
                        nbytes: int) -> None:
        """ClientPort hook: route a multicast to the group's listener."""
        if not self.alive:
            return
        listener = self._listeners.get(group)
        if listener is not None:
            self._count("gcs_delivered_total", kind="multicast")
            listener.on_message(group, sender, payload, nbytes)

    def deliver_view(self, view: GroupView, joined: List[MemberId],
                     left: List[MemberId], crashed: bool) -> None:
        """ClientPort hook: route a view change to listeners/watchers."""
        if not self.alive:
            return
        self._views[view.group] = view
        if self.member in left:
            listener = self._listeners.pop(view.group, None)
            if listener is not None:
                listener.on_view(view, joined, left, crashed)
        else:
            listener = self._listeners.get(view.group)
            if listener is not None:
                listener.on_view(view, joined, left, crashed)
        watcher = self._watch_listeners.get(view.group)
        if watcher is not None:
            watcher.on_view(view, joined, left, crashed)

    def deliver_direct(self, sender: MemberId, payload: Any,
                       nbytes: int) -> None:
        """ClientPort hook: route a point-to-point message."""
        if not self.alive:
            return
        if self._direct_handler is not None:
            self._count("gcs_delivered_total", kind="direct")
            self._direct_handler(sender, payload, nbytes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_stop(self) -> None:
        """Disconnect from the daemon when the process dies."""
        self.daemon.disconnect(self.member)
