"""Group-communication daemon (the Spread-daemon analogue).

One daemon runs per host.  Application processes connect to their
local daemon through :class:`repro.gcs.client.GcsClient`.  Daemons
provide:

- **membership**: daemon-level views maintained by all-to-all
  heartbeats plus a coordinator-driven flush protocol; group-level
  views derived from totally-ordered JOIN/LEAVE stamps;
- **reliable ordered multicast**: AGREED (total order via a sequencer
  daemon), SAFE (total order + all-daemons-hold-a-copy before
  delivery), FIFO (per-sender order), CAUSAL (vector clocks), and
  UNRELIABLE (raw frames) — Spread's service grades that the paper
  relies on (Section 3.1);
- **virtual synchrony**: on a view change, survivors exchange recent
  stamp histories and reconcile, so every survivor delivers the same
  set of AGREED messages before installing the new view.  This is the
  property that makes the paper's style-switch protocol (Fig. 5)
  tolerant to the crash of any replica: "fault notifications are
  ordered consistently with respect to the switch and the other
  messages".

The sequencer and view-change coordinator are both the lowest-named
daemon in the current view, so they move deterministically when a
daemon dies.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import GroupCommunicationError
from repro.gcs.failure_detector import (
    AdaptiveDetector,
    FixedTimeoutDetector,
)
from repro.gcs.links import ReliableLink
from repro.gcs.messages import (
    CausalData,
    SafeAck,
    SafeRelease,
    DaemonView,
    Direct,
    FifoData,
    FlushAck,
    FlushRequest,
    Forward,
    Grade,
    GroupSnapshot,
    GroupView,
    Heartbeat,
    JoinRequest,
    LeaveRequest,
    LinkAck,
    LinkData,
    MemberId,
    RawData,
    RejoinRequest,
    Stamped,
    StampKind,
    ViewInstall,
    estimate_control_bytes,
)
from repro.gcs.vector_clock import VectorClock
from repro.net.frame import Endpoint, Frame
from repro.net.network import Network
from repro.orb.accounting import COMPONENT_GCS
from repro.sim.actor import Actor
from repro.sim.config import GcsCalibration
from repro.sim.host import Process
from repro.telemetry.context import payload_context

#: Well-known daemon port (Spread's default).
GCS_PORT = 4803

#: How many recent stamps per group are carried in a FlushAck; must
#: exceed the largest possible divergence window between survivors
#: (bounded by retransmit timeout << failure timeout).
FLUSH_HISTORY_WINDOW = 64

#: A flushing daemon waits this long for the install before suspecting
#: the flush coordinator itself.
FLUSH_TIMEOUT_US = 500_000.0


class _GroupState:
    """Per-group bookkeeping at one daemon (identical everywhere).

    ``fanout_hosts`` and ``local_members`` are routing caches derived
    from ``members``: the sorted unique member hosts (every multicast
    fan-out iterates them) and this daemon's co-located members (every
    local delivery iterates them).  They are recomputed only when the
    membership changes — previously each multicast paid a ``sorted()``
    plus a set build per fan-out.
    """

    __slots__ = ("members", "view_id", "last_stamp", "history",
                 "recent_msg_ids", "causal_clock", "fanout_hosts",
                 "local_members")

    def __init__(self) -> None:
        self.members: List[MemberId] = []
        self.view_id = 0
        self.last_stamp = 0
        self.history: "OrderedDict[int, Stamped]" = OrderedDict()
        self.recent_msg_ids: Set[str] = set()
        self.causal_clock = VectorClock()
        self.fanout_hosts: Tuple[str, ...] = ()
        self.local_members: Tuple[MemberId, ...] = ()


class GcsDaemon(Actor):
    """The per-host group-communication daemon."""

    def __init__(self, process: Process, network: Network,
                 peers: Sequence[str],
                 calibration: Optional[GcsCalibration] = None):
        super().__init__(process, name=f"gcsd@{process.host.name}")
        self.network = network
        self.cal = calibration or GcsCalibration()
        self.host = process.host
        if self.host.name not in peers:
            raise GroupCommunicationError(
                f"daemon host {self.host.name} missing from peer list")
        self.endpoint = Endpoint(self.host.name, GCS_PORT)
        self.view = DaemonView(view_id=0, members=tuple(sorted(peers)))

        # Transport.  ``_sends`` caches one pre-bound ``link.send`` per
        # live peer so fan-out loops skip the dict-lookup + closed-check
        # dance of :meth:`_link`; a closing link evicts its own entry.
        self._links: Dict[str, ReliableLink] = {}
        self._sends: Dict[str, Callable[[Any, int], None]] = {}
        # Per-view routing caches, rebuilt on every view install.
        self._view_set: frozenset = frozenset()
        self._hb_targets: Tuple[Endpoint, ...] = ()
        # Cached (view_id, Heartbeat, wire bytes): the beat payload
        # only changes when the view does, so the per-tick message
        # build + size estimate are paid once per view.
        self._hb_beat: Optional[Tuple[int, Heartbeat, int]] = None
        self._rebuild_view_routing()
        self.host.bind(GCS_PORT, self._on_frame)

        # Failure detection.
        self._last_heard: Dict[str, float] = {
            p: self.sim.now for p in peers if p != self.host.name}
        if self.cal.adaptive_failure_detection:
            self._detector = AdaptiveDetector(
                floor_us=self.cal.failure_timeout_us)
        else:
            self._detector = FixedTimeoutDetector(
                self.cal.failure_timeout_us)
        for peer in self._last_heard:
            self._detector.heard_from(peer, self.sim.now)
        self._suspects: Set[str] = set()

        # Group state (replicated identically at all daemons).
        self._groups: Dict[str, _GroupState] = {}

        # Local clients and watchers.
        self._clients: Dict[MemberId, "ClientPort"] = {}
        self._watchers: Dict[str, Set[MemberId]] = {}
        self._local_joins: Dict[MemberId, Set[str]] = {}

        # Sequencer state (used only while self is the sequencer).
        self._next_seq: Dict[str, int] = {}

        # AGREED messages forwarded but not yet seen back as stamps,
        # and membership requests awaiting their stamps; both are
        # re-routed to the new sequencer after a view change.
        self._pending_forwards: "OrderedDict[str, Forward]" = OrderedDict()
        self._pending_membership: "OrderedDict[str, Any]" = OrderedDict()
        self._forward_ids = itertools.count(1)

        # FIFO-grade receive ordering is given by the links themselves;
        # CAUSAL needs a holdback queue per group.
        self._causal_holdback: Dict[str, List[CausalData]] = {}

        # SAFE grade: stamps held until the sequencer confirms every
        # member daemon has a copy; the sequencer tracks outstanding
        # acknowledgements per (group, seq).
        self._safe_held: Dict[Tuple[str, int], Stamped] = {}
        self._safe_awaiting: Dict[Tuple[str, int], Set[str]] = {}

        # Flush / view-change state.
        self._suspended = False
        self._outbox: List[Callable[[], None]] = []
        self._flush_epoch = 0          # highest flush epoch seen
        self._flush_acks: Dict[str, FlushAck] = {}
        self._flush_proposal: Optional[Tuple[str, ...]] = None

        # Primary-partition state (only used when the calibration
        # enables primary_partition): wedged means this daemon found
        # itself in a minority component and stopped serving;
        # _rejoiners are wedged peers probing us for re-admission.
        self._wedged = False
        self._rejoiners: Set[str] = set()

        self.set_periodic_timer("heartbeat", self.cal.heartbeat_interval_us,
                                self._send_heartbeats)
        self.set_periodic_timer("failcheck", self.cal.heartbeat_interval_us,
                                self._check_failures)

    # ==================================================================
    # Public API used by GcsClient
    # ==================================================================
    def connect(self, port: "ClientPort") -> None:
        """Attach a local client process to this daemon."""
        if not self.alive:
            raise GroupCommunicationError(
                f"daemon on {self.host.name} is down")
        if port.member in self._clients:
            raise GroupCommunicationError(
                f"{port.member} already connected")
        self._clients[port.member] = port
        self._local_joins[port.member] = set()

    def disconnect(self, member: MemberId) -> None:
        """Detach a client: leaves all its groups (fast local failure
        detection, as when Spread notices a dead local connection)."""
        port = self._clients.pop(member, None)
        if port is None:
            return
        joined = self._local_joins.pop(member, set())
        for groups in self._watchers.values():
            groups.discard(member)
        if not self.alive:
            # Host died with the client; remote daemons will detect it.
            return
        for group in sorted(joined):
            self._submit_leave(group, member, crashed=True)

    def client_join(self, group: str, member: MemberId) -> None:
        """Submit a join for a locally connected member."""
        self._require_client(member)
        msg_id = self._new_msg_id()
        request = JoinRequest(group=group, member=member, msg_id=msg_id)
        self._pending_membership[msg_id] = request
        self._enqueue_or_run(lambda: self._route_to_sequencer(request))

    def client_leave(self, group: str, member: MemberId) -> None:
        """Submit a voluntary leave for a local member."""
        self._require_client(member)
        self._submit_leave(group, member)

    def client_watch(self, group: str, member: MemberId) -> None:
        """Register a local watcher: receives group views but no data
        and is not listed in the membership (open-group semantics)."""
        self._require_client(member)
        self._watchers.setdefault(group, set()).add(member)
        state = self._groups.get(group)
        if state is not None:
            view = GroupView(group, state.view_id, tuple(state.members))
            self._deliver_view_to(member, view, joined=[], left=[],
                                  crashed=False)

    def client_multicast(self, group: str, member: MemberId, payload: Any,
                         payload_bytes: int, grade: Grade) -> None:
        """Send a group multicast with the given service grade."""
        self._require_client(member)
        if grade is Grade.AGREED or grade is Grade.SAFE:
            self._enqueue_or_run(
                lambda: self._forward_agreed(group, member, payload,
                                             payload_bytes,
                                             safe=grade is Grade.SAFE))
        elif grade is Grade.FIFO:
            self._enqueue_or_run(
                lambda: self._multicast_fifo(group, member, payload,
                                             payload_bytes))
        elif grade is Grade.CAUSAL:
            self._enqueue_or_run(
                lambda: self._multicast_causal(group, member, payload,
                                               payload_bytes))
        elif grade is Grade.UNRELIABLE:
            self._multicast_raw(group, member, payload, payload_bytes)
        else:  # pragma: no cover - exhaustive over Grade
            raise GroupCommunicationError(f"unknown grade: {grade}")

    def client_send_direct(self, src: MemberId, dst: MemberId, payload: Any,
                           payload_bytes: int) -> None:
        """Send a reliable point-to-point message."""
        self._require_client(src)
        message = Direct(dst=dst, src=src, payload=payload,
                         payload_bytes=payload_bytes)
        self._enqueue_or_run(lambda: self._route_direct(message))

    def group_view(self, group: str) -> Optional[GroupView]:
        """Current view of ``group`` as known at this daemon."""
        state = self._groups.get(group)
        if state is None:
            return None
        return GroupView(group, state.view_id, tuple(state.members))

    @property
    def sequencer(self) -> str:
        """The host running the sequencer/coordinator in the current view."""
        return self.view.coordinator()

    @property
    def is_sequencer(self) -> bool:
        return self.sequencer == self.host.name

    def _require_client(self, member: MemberId) -> None:
        if member not in self._clients:
            raise GroupCommunicationError(f"{member} is not connected")

    def _new_msg_id(self) -> str:
        return f"{self.host.name}:{next(self._forward_ids)}"

    def _submit_leave(self, group: str, member: MemberId,
                      crashed: bool = False) -> None:
        msg_id = self._new_msg_id()
        request = LeaveRequest(group=group, member=member, msg_id=msg_id,
                               crashed=crashed)
        self._pending_membership[msg_id] = request
        self._enqueue_or_run(lambda: self._route_to_sequencer(request))

    # ==================================================================
    # Transport plumbing
    # ==================================================================
    def _link(self, peer: str) -> ReliableLink:
        link = self._links.get(peer)
        if link is None or link.closed:
            link = ReliableLink(
                self.sim, self.network, self.cal,
                local=self.endpoint, peer=Endpoint(peer, GCS_PORT),
                deliver=lambda inner, nbytes, p=peer:
                    self._on_reliable(p, inner, nbytes),
                on_close=lambda p=peer: self._sends.pop(p, None))
            self._links[peer] = link
            self._sends[peer] = link.send
        return link

    def _send_to(self, peer: str) -> Callable[[Any, int], None]:
        """Pre-bound reliable ``send`` for ``peer`` (cached per link
        lifetime; re-bound lazily after a link closes)."""
        send = self._sends.get(peer)
        if send is None:
            send = self._link(peer).send
        return send

    def _rebuild_view_routing(self) -> None:
        """Recompute the per-daemon-view caches: the membership set
        (hot ``in`` checks) and the heartbeat target endpoints."""
        members = self.view.members
        self._view_set = frozenset(members)
        self._hb_targets = tuple(Endpoint(peer, GCS_PORT)
                                 for peer in members
                                 if peer != self.host.name)

    def _rebuild_group_routing(self, state: _GroupState) -> None:
        """Recompute a group's fan-out / local-delivery caches after a
        membership change (the only place ``state.members`` mutates)."""
        members = state.members
        host_name = self.host.name
        state.fanout_hosts = tuple(sorted({m.host for m in members}))
        state.local_members = tuple(m for m in members
                                    if m.host == host_name)

    def _on_frame(self, frame: Frame) -> None:
        if not self.alive:
            return
        peer = frame.src.host
        self._last_heard[peer] = self.sim.now
        self._detector.heard_from(peer, self.sim.now)
        payload = frame.payload
        if isinstance(payload, Heartbeat):
            return  # liveness already recorded above
        if isinstance(payload, LinkData):
            self._link(peer).on_link_data(payload.link_seq, payload.inner,
                                          payload.inner_bytes)
        elif isinstance(payload, LinkAck):
            self._link(peer).on_ack(payload.cum_seq)
        elif isinstance(payload, RawData):
            # Best-effort data: no CPU-intensive ordering, deliver now.
            self._cpu(lambda: self._deliver_raw(payload))
        elif isinstance(payload, RejoinRequest):
            self._cpu(lambda: self._on_rejoin_request(payload))
        else:  # pragma: no cover - unknown frames dropped like real UDP
            self.trace("gcs.drop", f"unknown frame kind {type(payload)}")

    def _on_reliable(self, peer: str, inner: Any, nbytes: int) -> None:
        """In-order reliable delivery from ``peer``: charge daemon CPU
        then dispatch on the message type."""
        telemetry = self.sim.telemetry
        span = None
        if telemetry.enabled:
            # Application frames carry their trace context (read
            # through the payload wrappers); the hop span nests under
            # the in-flight transit span.
            ctx = payload_context(inner)
            if ctx is not None:
                span = telemetry.begin(
                    ctx, "gcsd.process", COMPONENT_GCS,
                    host=self.host.name, process=self.name,
                    now=self.sim.now, peer=peer)
        if span is None:
            self._cpu(lambda: self._dispatch(peer, inner))
        else:
            def dispatched() -> None:
                telemetry.end(span, self.sim.now)
                self._dispatch(peer, inner)
            self._cpu(dispatched)

    def _cpu(self, continuation: Callable[[], None]) -> None:
        demand = self.cal.daemon_processing_us
        self.host.cpu.execute(demand, self._guard(continuation))

    def _guard(self, continuation: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            if self.alive:
                continuation()
        return run

    def _dispatch(self, peer: str, inner: Any) -> None:
        if isinstance(inner, Forward):
            self._sequencer_stamp_data(inner)
        elif isinstance(inner, JoinRequest):
            self._sequencer_stamp_membership(StampKind.JOIN, inner.group,
                                             inner.member, inner.msg_id)
        elif isinstance(inner, LeaveRequest):
            self._sequencer_stamp_membership(StampKind.LEAVE, inner.group,
                                             inner.member, inner.msg_id,
                                             crashed=inner.crashed)
        elif isinstance(inner, Stamped):
            self._apply_stamp(inner)
        elif isinstance(inner, SafeAck):
            self._on_safe_ack(inner)
        elif isinstance(inner, SafeRelease):
            self._on_safe_release(inner)
        elif isinstance(inner, Direct):
            self._deliver_direct(inner)
        elif isinstance(inner, FifoData):
            self._deliver_fifo(inner)
        elif isinstance(inner, CausalData):
            self._receive_causal(inner)
        elif isinstance(inner, FlushRequest):
            self._on_flush_request(inner)
        elif isinstance(inner, FlushAck):
            self._on_flush_ack(inner)
        elif isinstance(inner, GroupSnapshot):
            self._on_group_snapshot(inner)
        elif isinstance(inner, ViewInstall):
            self._on_view_install(inner)
        else:  # pragma: no cover
            self.trace("gcs.drop", f"unknown reliable message {type(inner)}")

    def _enqueue_or_run(self, op: Callable[[], None]) -> None:
        """Run an application-level send now, or buffer it while a
        view change is in progress (sends are suspended during flush)."""
        if self._suspended:
            self._outbox.append(op)
        else:
            op()

    # ==================================================================
    # AGREED grade: sequencer-based total order
    # ==================================================================
    def _forward_agreed(self, group: str, origin: MemberId, payload: Any,
                        payload_bytes: int, safe: bool = False) -> None:
        forward = Forward(group=group, origin=origin, payload=payload,
                          payload_bytes=payload_bytes,
                          msg_id=self._new_msg_id(), safe=safe)
        self._pending_forwards[forward.msg_id] = forward
        self._route_to_sequencer(forward)

    def _route_to_sequencer(self, message: Any) -> None:
        nbytes = getattr(message, "payload_bytes", None)
        if nbytes is None:
            nbytes = estimate_control_bytes(message)
        if self.is_sequencer:
            self._cpu(lambda: self._dispatch(self.host.name, message))
        else:
            self._send_to(self.sequencer)(message, nbytes)

    def _sequencer_stamp_data(self, forward: Forward) -> None:
        if not self.is_sequencer:
            # Stale routing (sequencer just changed): re-route.
            self._route_to_sequencer(forward)
            return
        state = self._group(forward.group)
        if forward.msg_id in state.recent_msg_ids:
            return  # duplicate re-forward after a view change
        seq = self._alloc_seq(forward.group)
        stamp = Stamped(group=forward.group, seq=seq, kind=StampKind.DATA,
                        origin=forward.origin, payload=forward.payload,
                        payload_bytes=forward.payload_bytes,
                        msg_id=forward.msg_id, safe=forward.safe)
        if forward.safe:
            # Track which member daemons still owe an acknowledgement.
            self._safe_awaiting[(forward.group, seq)] = \
                set(state.fanout_hosts)
        self._disseminate(stamp)

    def _sequencer_stamp_membership(self, kind: StampKind, group: str,
                                    member: MemberId, msg_id: str,
                                    crashed: bool = False) -> None:
        if not self.is_sequencer:
            if kind is StampKind.JOIN:
                request: Any = JoinRequest(group=group, member=member,
                                           msg_id=msg_id)
            else:
                request = LeaveRequest(group=group, member=member,
                                       msg_id=msg_id, crashed=crashed)
            self._route_to_sequencer(request)
            return
        state = self._group(group)
        if msg_id in state.recent_msg_ids:
            return
        # Drop no-op membership changes (duplicate join, unknown leave).
        if kind is StampKind.JOIN and member in state.members:
            return
        if kind is StampKind.LEAVE and member not in state.members:
            return
        seq = self._alloc_seq(group)
        stamp = Stamped(group=group, seq=seq, kind=kind, origin=member,
                        msg_id=msg_id, crashed=crashed)
        self._disseminate(stamp)

    def _alloc_seq(self, group: str) -> int:
        state = self._group(group)
        nxt = self._next_seq.get(group, state.last_stamp + 1)
        self._next_seq[group] = nxt + 1
        return nxt

    def _disseminate(self, stamp: Stamped) -> None:
        """Sequencer-side: charge ordering cost, apply locally, and
        push the stamp over reliable links to the daemons that need it."""
        self.host.cpu.execute(self.cal.ordering_us, self._guard(lambda: None))
        if stamp.kind is StampKind.DATA:
            targets = self._group(stamp.group).fanout_hosts
        else:
            # Membership stamps refresh routing state everywhere; the
            # daemon view is kept sorted and unique, so iterating it
            # matches the old sorted(set(...)) order exactly.
            targets = self.view.members
        nbytes = stamp.payload_bytes + 24
        view_set = self._view_set
        host_name = self.host.name
        for target in targets:
            if target == host_name:
                continue
            if target in view_set:
                self._send_to(target)(stamp, nbytes)
        self._apply_stamp(stamp)

    def _apply_stamp(self, stamp: Stamped) -> None:
        """Apply one totally-ordered group event at this daemon."""
        state = self._group(stamp.group)
        if stamp.seq <= state.last_stamp:
            return  # duplicate (e.g. flush recovery overlap)
        state.last_stamp = stamp.seq
        state.history[stamp.seq] = stamp
        while len(state.history) > self.cal.history_limit:
            state.history.popitem(last=False)
        if stamp.msg_id:
            state.recent_msg_ids.add(stamp.msg_id)
            if len(state.recent_msg_ids) > 4 * self.cal.history_limit:
                state.recent_msg_ids = {
                    s.msg_id for s in state.history.values() if s.msg_id}
        self._pending_forwards.pop(stamp.msg_id, None)
        self._pending_membership.pop(stamp.msg_id, None)

        if stamp.kind is StampKind.DATA:
            if stamp.safe:
                # Hold delivery until the sequencer's release; tell the
                # sequencer we hold a copy.
                self._safe_held[(stamp.group, stamp.seq)] = stamp
                ack = SafeAck(group=stamp.group, seq=stamp.seq,
                              sender=self.host.name)
                if self.is_sequencer:
                    self._on_safe_ack(ack)
                else:
                    self._send_to(self.sequencer)(
                        ack, estimate_control_bytes(ack))
                return
            for member in state.local_members:
                self._deliver_data_to(member, stamp.group, stamp.origin,
                                      stamp.payload, stamp.payload_bytes)
        elif stamp.kind is StampKind.JOIN:
            self._apply_membership(state, stamp.group, joined=[stamp.origin],
                                   left=[], crashed=False)
        elif stamp.kind is StampKind.LEAVE:
            self._apply_membership(state, stamp.group, joined=[],
                                   left=[stamp.origin],
                                   crashed=stamp.crashed)

    def _apply_membership(self, state: _GroupState, group: str,
                          joined: List[MemberId], left: List[MemberId],
                          crashed: bool) -> None:
        changed = False
        for member in joined:
            if member not in state.members:
                state.members.append(member)
                changed = True
                if member.host == self.host.name and member in self._clients:
                    self._local_joins.setdefault(member, set()).add(group)
        for member in left:
            if member in state.members:
                state.members.remove(member)
                changed = True
                if member.host == self.host.name:
                    joins = self._local_joins.get(member)
                    if joins is not None:
                        joins.discard(group)
        if not changed:
            return
        # Members stay in join order (identical at every daemon because
        # joins are totally ordered): members[0] is the longest-standing
        # member, which the replication layer elects as primary.
        self._rebuild_group_routing(state)
        state.view_id += 1
        view = GroupView(group, state.view_id, tuple(state.members))
        self.trace("gcs.view",
                   f"group {group} view {state.view_id}: "
                   f"{[str(m) for m in state.members]}",
                   group=group, view_id=state.view_id,
                   joined=[str(m) for m in joined],
                   left=[str(m) for m in left], crashed=crashed)
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.host.name, "gcs",
                           "membership.view", group=group,
                           view_id=state.view_id,
                           members=[str(m) for m in state.members],
                           joined=[str(m) for m in joined],
                           left=[str(m) for m in left], crashed=crashed)
        for member in state.local_members:
            self._deliver_view_to(member, view, joined, left, crashed)
        # A local member that just left still gets the view that
        # excludes it (so its listener learns the leave completed).
        for member in left:
            if member.host == self.host.name:
                self._deliver_view_to(member, view, joined, left, crashed)
        for watcher in sorted(self._watchers.get(group, ())):
            self._deliver_view_to(watcher, view, joined, left, crashed)

    # ==================================================================
    # SAFE grade: acknowledgement collection and release
    # ==================================================================
    def _on_safe_ack(self, ack: SafeAck) -> None:
        key = (ack.group, ack.seq)
        awaiting = self._safe_awaiting.get(key)
        if awaiting is None:
            return
        awaiting.discard(ack.sender)
        # Daemons that left the view no longer owe acknowledgements.
        awaiting &= self._view_set
        if awaiting:
            return
        del self._safe_awaiting[key]
        release = SafeRelease(group=ack.group, seq=ack.seq)
        nbytes = estimate_control_bytes(release)
        view_set = self._view_set
        for target in self._group(ack.group).fanout_hosts:
            if target == self.host.name:
                self._on_safe_release(release)
            elif target in view_set:
                self._send_to(target)(release, nbytes)

    def _on_safe_release(self, release: SafeRelease) -> None:
        stamp = self._safe_held.pop((release.group, release.seq), None)
        if stamp is None:
            return
        state = self._group(release.group)
        for member in state.local_members:
            self._deliver_data_to(member, stamp.group, stamp.origin,
                                  stamp.payload, stamp.payload_bytes)

    def _release_all_held_safe(self) -> None:
        """View change: the flush reconciliation guarantees every
        survivor holds the same SAFE stamps, so the safety condition
        is met for the surviving membership — deliver them all."""
        held = sorted(self._safe_held)
        for key in held:
            self._on_safe_release(SafeRelease(group=key[0], seq=key[1]))
        self._safe_awaiting.clear()

    # ==================================================================
    # FIFO grade
    # ==================================================================
    def _multicast_fifo(self, group: str, origin: MemberId, payload: Any,
                        payload_bytes: int) -> None:
        message = FifoData(group=group, origin=origin, payload=payload,
                           payload_bytes=payload_bytes)
        self._fanout_reliable(group, message, payload_bytes,
                              local=lambda: self._deliver_fifo(message))

    def _deliver_fifo(self, message: FifoData) -> None:
        state = self._group(message.group)
        for member in state.local_members:
            self._deliver_data_to(member, message.group, message.origin,
                                  message.payload, message.payload_bytes)

    # ==================================================================
    # CAUSAL grade
    # ==================================================================
    def _multicast_causal(self, group: str, origin: MemberId, payload: Any,
                          payload_bytes: int) -> None:
        state = self._group(group)
        state.causal_clock.tick(self.host.name)
        message = CausalData(group=group, origin=origin,
                             clock=state.causal_clock.snapshot(),
                             payload=payload, payload_bytes=payload_bytes)
        self._fanout_reliable(group, message, payload_bytes + 32,
                              local=lambda: self._deliver_causal_now(message))

    def _receive_causal(self, message: CausalData) -> None:
        self._causal_holdback.setdefault(message.group, []).append(message)
        self._drain_causal(message.group)

    def _drain_causal(self, group: str) -> None:
        state = self._group(group)
        holdback = self._causal_holdback.get(group, [])
        progressed = True
        while progressed:
            progressed = False
            for message in list(holdback):
                sender_host = message.origin.host
                if state.causal_clock.can_deliver(message.clock, sender_host):
                    holdback.remove(message)
                    state.causal_clock.deliver(message.clock, sender_host)
                    self._deliver_causal_now(message)
                    progressed = True

    def _deliver_causal_now(self, message: CausalData) -> None:
        state = self._group(message.group)
        for member in state.local_members:
            self._deliver_data_to(member, message.group, message.origin,
                                  message.payload, message.payload_bytes)

    # ==================================================================
    # UNRELIABLE grade
    # ==================================================================
    def _multicast_raw(self, group: str, origin: MemberId, payload: Any,
                       payload_bytes: int) -> None:
        message = RawData(group=group, origin=origin, payload=payload,
                          payload_bytes=payload_bytes)
        state = self._group(group)
        nbytes = payload_bytes + self.cal.header_bytes
        for target in state.fanout_hosts:
            if target == self.host.name:
                self._deliver_raw(message)
            else:
                self.network.send(self.endpoint, Endpoint(target, GCS_PORT),
                                  message, nbytes, kind="gcs.raw")

    def _deliver_raw(self, message: RawData) -> None:
        state = self._group(message.group)
        for member in state.local_members:
            self._deliver_data_to(member, message.group, message.origin,
                                  message.payload, message.payload_bytes)

    def _fanout_reliable(self, group: str, message: Any, nbytes: int,
                         local: Callable[[], None]) -> None:
        state = self._group(group)
        view_set = self._view_set
        for target in state.fanout_hosts:
            if target == self.host.name:
                self._cpu(local)
            elif target in view_set:
                self._send_to(target)(message, nbytes)

    # ==================================================================
    # Direct (point-to-point) messages
    # ==================================================================
    def _route_direct(self, message: Direct) -> None:
        if message.dst.host == self.host.name:
            self._cpu(lambda: self._deliver_direct(message))
        elif message.dst.host in self._view_set:
            self._send_to(message.dst.host)(message, message.payload_bytes)
        else:
            self.trace("gcs.drop",
                       f"direct to {message.dst} on dead host dropped")

    def _deliver_direct(self, message: Direct) -> None:
        port = self._clients.get(message.dst)
        if port is None:
            return
        self._emit_ipc_span(message)
        self.sim.schedule_fast(self.cal.local_ipc_us, self._guard(
            lambda: port.deliver_direct(message.src, message.payload,
                                        message.payload_bytes)))

    # ==================================================================
    # Delivery to local clients
    # ==================================================================
    def _deliver_data_to(self, member: MemberId, group: str,
                         sender: MemberId, payload: Any, nbytes: int) -> None:
        port = self._clients.get(member)
        if port is None:
            return
        self._emit_ipc_span(payload)
        self.sim.schedule_fast(self.cal.local_ipc_us, self._guard(
            lambda: port.deliver_message(group, sender, payload, nbytes)))

    def _emit_ipc_span(self, payload: Any) -> None:
        """Record the daemon->client local-IPC hop as a pre-closed span
        (its cost is pure scheduling delay, no CPU involved)."""
        telemetry = self.sim.telemetry
        if not telemetry.enabled:
            return
        ctx = payload_context(payload)
        if ctx is not None:
            telemetry.emit(ctx, "gcsd.ipc", COMPONENT_GCS,
                           self.sim.now, self.sim.now + self.cal.local_ipc_us,
                           host=self.host.name, process=self.name)

    def _deliver_view_to(self, member: MemberId, view: GroupView,
                         joined: List[MemberId], left: List[MemberId],
                         crashed: bool) -> None:
        port = self._clients.get(member)
        if port is None:
            return
        self.sim.schedule_fast(self.cal.local_ipc_us, self._guard(
            lambda: port.deliver_view(view, list(joined), list(left),
                                      crashed)))

    # ==================================================================
    # Failure detection
    # ==================================================================
    def _send_heartbeats(self) -> None:
        view_id = self.view.view_id
        cached = self._hb_beat
        if cached is None or cached[0] != view_id:
            beat = Heartbeat(sender=self.host.name, view_id=view_id)
            cached = (view_id, beat, estimate_control_bytes(beat))
            self._hb_beat = cached
        _, beat, nbytes = cached
        send = self.network.send
        src = self.endpoint
        for target in self._hb_targets:
            send(src, target, beat, nbytes, kind="gcs.heartbeat")

    def _check_failures(self) -> None:
        if self._wedged:
            self._check_heal()
            return
        candidates = [peer for peer in self.view.members
                      if peer != self.host.name
                      and peer not in self._suspects]
        newly = self._detector.suspects(candidates, self.sim.now)
        if not newly:
            return
        self._suspects |= newly
        self.trace("gcs.suspect",
                   f"suspecting {sorted(newly)}", suspects=sorted(self._suspects))
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.host.name, "gcs",
                           "detector.suspect", newly=sorted(newly),
                           suspects=sorted(self._suspects))
        self._maybe_start_flush()

    def _live_members(self) -> Tuple[str, ...]:
        return tuple(m for m in self.view.members if m not in self._suspects)

    def _has_majority(self, live: Sequence[str]) -> bool:
        """Primary-partition quorum test: strictly more than half of
        the *current view* must be reachable to keep serving."""
        return 2 * len(live) > len(self.view.members)

    def _maybe_start_flush(self) -> None:
        live = self._live_members()
        if not live or live == self.view.members:
            return
        if self.cal.primary_partition and not self._has_majority(live):
            # Minority component: never install a concurrent
            # fully-operational view — wedge and wait for heal.
            self._wedge(live)
            return
        if min(live) != self.host.name:
            return  # not the coordinator; wait (or take over on timeout)
        self._start_flush(live)

    # ==================================================================
    # Primary-partition membership: wedge, probe, heal, merge
    # ==================================================================
    def _wedge(self, live: Tuple[str, ...]) -> None:
        """Enter the degraded non-serving state: we can only reach a
        minority of the view, so forming a view would risk split-brain.
        Client operations are buffered (the ``_suspended`` outbox),
        links are closed so the eventual merge starts with fresh
        sequence state, and a periodic rejoin probe looks for heal."""
        if self._wedged:
            return
        self._wedged = True
        self._suspended = True
        for link in list(self._links.values()):
            link.close()
        self._links.clear()
        self._sends.clear()
        groups = sorted(self._groups)
        self.trace("gcs.partition",
                   f"minority component {sorted(live)} of "
                   f"{list(self.view.members)}: wedged",
                   live=sorted(live), suspects=sorted(self._suspects))
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.host.name, "gcs",
                           "partition.detected", live=sorted(live),
                           suspects=sorted(self._suspects),
                           members=list(self.view.members))
            journal.record(self.sim.now, self.host.name, "gcs",
                           "partition.wedged", live=sorted(live),
                           members=list(self.view.members),
                           groups=groups)
        self.set_periodic_timer("rejoin", self.cal.rejoin_probe_interval_us,
                                self._probe_rejoin)

    def _probe_rejoin(self) -> None:
        """While wedged, probe unreachable peers with raw rejoin
        frames; the copy that crosses a healed partition triggers the
        majority coordinator's merge flush."""
        if not self._wedged:
            self.cancel_timer("rejoin")
            return
        probe = RejoinRequest(sender=self.host.name,
                              view_id=self.view.view_id)
        nbytes = estimate_control_bytes(probe)
        # Probe every other member of the (stale) view, not just the
        # suspects: the wedge may have fired before every unreachable
        # peer went stale, and the coordinator of the majority side —
        # the one daemon whose reaction matters — can be any of them.
        targets = [p for p in self.view.members if p != self.host.name]
        for peer in targets:
            self.network.send(self.endpoint, Endpoint(peer, GCS_PORT),
                              probe, nbytes, kind="gcs.rejoin")

    def _check_heal(self) -> None:
        """Wedged-side heal detection: if recently-heard peers restore
        a majority, un-suspect them and (as coordinator) start the
        merge flush.  Covers the symmetric case where no component had
        a majority, so no side installed a view and heartbeats resume
        flowing after heal; the asymmetric case (majority installed
        without us) is driven by the rejoin probes instead."""
        horizon = self.sim.now - self.cal.failure_timeout_us
        recovered = {p for p in self._suspects
                     if self._last_heard.get(p, -1.0) >= horizon}
        live = tuple(m for m in self.view.members
                     if m not in self._suspects or m in recovered)
        if not self._has_majority(live):
            return
        self._suspects -= recovered
        if min(live) == self.host.name and self._flush_proposal is None:
            self._start_flush(live)

    def _on_rejoin_request(self, request: RejoinRequest) -> None:
        """A wedged peer probes for re-admission.  Only the current
        coordinator acts, and only while not itself wedged; the merge
        is an ordinary flush whose proposal includes the rejoiners."""
        if not self.cal.primary_partition or self._wedged:
            return
        sender = request.sender
        if sender == self.host.name:
            return
        if sender in self._view_set and sender not in self._suspects:
            return  # already a live member; stray probe after merge
        self._rejoiners.add(sender)
        live = self._live_members()
        if self._suspended or not live or min(live) != self.host.name:
            return  # probes repeat; a later one lands after the flush
        proposal = tuple(sorted(set(live) | self._rejoiners))
        self._start_flush(proposal)

    def _build_group_snapshot(self, epoch: int) -> GroupSnapshot:
        """Authoritative per-group state for a rejoiner, sent ahead of
        the merge install on the same reliable link."""
        groups: Dict[str, Tuple[Tuple[MemberId, ...], int, int]] = {}
        recent: Dict[str, List[Stamped]] = {}
        clocks: Dict[str, Dict[str, int]] = {}
        for group in sorted(self._groups):
            state = self._groups[group]
            groups[group] = (tuple(state.members), state.view_id,
                             state.last_stamp)
            window = list(state.history.values())[-FLUSH_HISTORY_WINDOW:]
            recent[group] = window
            clock = state.causal_clock.snapshot()
            if clock:
                clocks[group] = clock
        return GroupSnapshot(epoch=epoch, groups=groups, recent=recent,
                             causal_clocks=clocks)

    def _on_group_snapshot(self, snapshot: GroupSnapshot) -> None:
        """Rejoiner side: discard stale (possibly forked) group state
        and adopt the majority's.  The merge install's recovery stamps
        apply on top, so the rejoiner ends at the same cut as every
        survivor; its own members re-join after the install."""
        if snapshot.epoch < self._flush_epoch:
            return
        self._groups = {}
        self._safe_held.clear()
        self._safe_awaiting.clear()
        self._causal_holdback.clear()
        self._pending_forwards.clear()
        for group in sorted(snapshot.groups):
            members, view_id, last_seq = snapshot.groups[group]
            state = self._group(group)
            state.members = list(members)
            state.view_id = view_id
            state.last_stamp = last_seq
            for stamp in snapshot.recent.get(group, ()):
                state.history[stamp.seq] = stamp
                if stamp.msg_id:
                    state.recent_msg_ids.add(stamp.msg_id)
            clock = snapshot.causal_clocks.get(group)
            if clock:
                state.causal_clock = VectorClock(clock)
            self._rebuild_group_routing(state)

    def _heal_wedge(self) -> None:
        """Called on the merge install at a previously wedged daemon:
        resume serving and re-submit joins for local members the
        majority removed while we were away."""
        self._wedged = False
        self.cancel_timer("rejoin")
        self.trace("gcs.partition",
                   f"healed into daemon view {self.view.view_id}")
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.host.name, "gcs",
                           "partition.healed", view_id=self.view.view_id,
                           members=list(self.view.members),
                           groups=sorted(self._groups))
        for member in sorted(self._local_joins):
            if member not in self._clients:
                continue
            for group in sorted(self._local_joins[member]):
                state = self._groups.get(group)
                if state is not None and member in state.members:
                    continue
                msg_id = self._new_msg_id()
                request = JoinRequest(group=group, member=member,
                                      msg_id=msg_id)
                self._pending_membership[msg_id] = request
                self._route_to_sequencer(request)

    # ==================================================================
    # View change: flush protocol
    # ==================================================================
    def _start_flush(self, proposal: Tuple[str, ...]) -> None:
        self._flush_epoch = max(self.view.view_id, self._flush_epoch) + 1
        self._flush_proposal = proposal
        self._flush_acks = {}
        self._suspended = True
        self.trace("gcs.flush",
                   f"flush epoch {self._flush_epoch} proposal {list(proposal)}",
                   epoch=self._flush_epoch, proposal=list(proposal))
        request = FlushRequest(epoch=self._flush_epoch,
                               proposer=self.host.name, members=proposal,
                               proposer_view_id=self.view.view_id)
        for peer in proposal:
            if peer == self.host.name:
                self._on_flush_request(request)
            else:
                self._link(peer).send(request,
                                      estimate_control_bytes(request))
        self.set_timer("flush", FLUSH_TIMEOUT_US, self._on_flush_timeout)

    def _on_flush_request(self, request: FlushRequest) -> None:
        if request.epoch <= self.view.view_id or request.epoch < self._flush_epoch:
            return  # stale proposal
        self._flush_epoch = request.epoch
        self._suspended = True
        histories: Dict[str, Dict[int, Stamped]] = {}
        next_seqs: Dict[str, int] = {}
        if self._wedged and request.proposer_view_id > self.view.view_id:
            # Merge after an asymmetric wedge: the proposer installed
            # views we missed, so our group state is stale and any
            # stamps we hold beyond the shared prefix are forked.
            # Report nothing — the coordinator's GroupSnapshot plus
            # the install's recovery stamps rebuild us at its cut.
            pass
        else:
            for group, state in self._groups.items():
                recent = list(state.history.items())[-FLUSH_HISTORY_WINDOW:]
                histories[group] = dict(recent)
                next_seqs[group] = state.last_stamp + 1
        ack = FlushAck(epoch=request.epoch, sender=self.host.name,
                       histories=histories, next_seqs=next_seqs)
        if request.proposer == self.host.name:
            self._on_flush_ack(ack)
        else:
            self._link(request.proposer).send(ack,
                                              estimate_control_bytes(ack))
            # If the proposer dies before installing, take over.
            self.set_timer("flush", FLUSH_TIMEOUT_US, self._on_flush_timeout)

    def _on_flush_ack(self, ack: FlushAck) -> None:
        if ack.epoch != self._flush_epoch or self._flush_proposal is None:
            return
        self._flush_acks[ack.sender] = ack
        waiting = set(self._flush_proposal) - set(self._flush_acks)
        if waiting:
            return
        # All survivors reported: compute the union cut per group.
        recovery: Dict[str, List[Stamped]] = {}
        next_seqs: Dict[str, int] = {}
        union: Dict[str, Dict[int, Stamped]] = {}
        for ackmsg in self._flush_acks.values():
            for group, history in ackmsg.histories.items():
                union.setdefault(group, {}).update(history)
            for group, nxt in ackmsg.next_seqs.items():
                next_seqs[group] = max(next_seqs.get(group, 1), nxt)
        for group, stamps in union.items():
            recovery[group] = [stamps[s] for s in sorted(stamps)]
            top = max(stamps) + 1 if stamps else 1
            next_seqs[group] = max(next_seqs.get(group, 1), top)
        new_view = DaemonView(view_id=self._flush_epoch,
                              members=self._flush_proposal)
        install = ViewInstall(epoch=self._flush_epoch, view=new_view,
                              recovery=recovery, next_seqs=next_seqs)
        # Hosts re-admitted after a partition (in the proposal but not
        # in our current view) first get the authoritative group state,
        # then the install — sent before our own install so that
        # anything the resumed coordinator pushes at them afterwards
        # arrives behind the snapshot on the ordered link.
        rejoiners = set(self._flush_proposal) - set(self.view.members)
        if rejoiners:
            snapshot = self._build_group_snapshot(self._flush_epoch)
            snap_bytes = estimate_control_bytes(snapshot)
            for peer in sorted(rejoiners):
                self._link(peer).send(snapshot, snap_bytes)
                self._link(peer).send(install,
                                      estimate_control_bytes(install))
        for peer in self._flush_proposal:
            if peer in rejoiners:
                continue
            if peer == self.host.name:
                self._on_view_install(install)
            else:
                self._link(peer).send(install,
                                      estimate_control_bytes(install))

    def _on_flush_timeout(self) -> None:
        """The flush stalled (coordinator or a member died mid-flush).

        Re-run failure detection with a fresh suspicion of whoever we
        were waiting for, then restart the flush if we now coordinate.
        """
        if not self._suspended:
            return
        if self._wedged:
            # A merge attempt stalled (peer died or re-partitioned
            # mid-flush); clear it so the heal check can retry.
            self._flush_proposal = None
            self._flush_acks = {}
            return
        live = self._live_members()
        if self._flush_proposal is not None and min(live) == self.host.name:
            # Suspect proposed members that never acked.
            silent = set(self._flush_proposal) - set(self._flush_acks)
            silent.discard(self.host.name)
            stalled = {
                p for p in silent
                if self.sim.now - self._last_heard.get(p, 0.0)
                > self.cal.failure_timeout_us}
            self._suspects |= stalled
        else:
            # We were a follower; the proposer must be gone.
            coordinator = min(live)
            if coordinator != self.host.name:
                self.set_timer("flush", FLUSH_TIMEOUT_US,
                               self._on_flush_timeout)
                return
        proposal = self._live_members()
        if self.cal.primary_partition and proposal \
                and not self._has_majority(proposal):
            self._wedge(proposal)
            return
        if proposal and min(proposal) == self.host.name:
            self._start_flush(proposal)

    def _on_view_install(self, install: ViewInstall) -> None:
        if install.epoch < self._flush_epoch or install.epoch <= self.view.view_id:
            return
        self.cancel_timer("flush")
        # 1. Apply recovery stamps so all survivors share one cut.
        for group in sorted(install.recovery):
            for stamp in install.recovery[group]:
                self._apply_stamp(stamp)
        # 2. Install the daemon view; close links to the departed.
        old_members = set(self.view.members)
        self.view = install.view
        dead = old_members - set(install.view.members)
        for peer in dead:
            link = self._links.pop(peer, None)
            if link is not None:
                link.close()
            self._suspects.discard(peer)
            self._last_heard.pop(peer, None)
            self._detector.forget(peer)
        self._rebuild_view_routing()
        self._suspects &= set(install.view.members)
        self._next_seq = dict(install.next_seqs)
        self.trace("gcs.install",
                   f"installed daemon view {self.view.view_id} "
                   f"members {list(self.view.members)}",
                   view_id=self.view.view_id,
                   members=list(self.view.members), dead=sorted(dead))
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.host.name, "gcs",
                           "daemon.install", view_id=self.view.view_id,
                           members=list(self.view.members),
                           dead=sorted(dead))
        # 3. Remove group members stranded on dead daemons; every
        #    survivor computes the identical result at the same cut.
        for group in sorted(self._groups):
            state = self._groups[group]
            gone = [m for m in state.members if m.host in dead]
            if gone:
                self._apply_membership(state, group, joined=[], left=gone,
                                       crashed=True)
        # 3b. Release SAFE messages held across the change: every
        #     survivor now provably holds them (flush reconciliation).
        self._release_all_held_safe()
        # 4. Resume: re-route membership requests and AGREED messages
        #    that never got stamped (their sequencer may have died),
        #    then drain sends buffered during the flush.
        self._suspended = False
        self._flush_proposal = None
        self._flush_acks = {}
        self._rejoiners -= set(install.view.members)
        for request in list(self._pending_membership.values()):
            self._route_to_sequencer(request)
        pending = list(self._pending_forwards.values())
        for forward in pending:
            self._route_to_sequencer(forward)
        outbox, self._outbox = self._outbox, []
        for op in outbox:
            op()
        # 5. If we were wedged in a minority component, this install is
        #    the heal: resume serving and re-join our local members.
        if self._wedged:
            self._heal_wedge()

    # ==================================================================
    # Internals
    # ==================================================================
    def _group(self, group: str) -> _GroupState:
        state = self._groups.get(group)
        if state is None:
            state = _GroupState()
            self._groups[group] = state
        return state

    def on_stop(self) -> None:
        """Close links and release the daemon port."""
        for link in self._links.values():
            link.close()
        self._links.clear()
        self._sends.clear()
        self.host.unbind(GCS_PORT)


class ClientPort:
    """Daemon-side handle for one connected client process.

    :class:`repro.gcs.client.GcsClient` implements this interface; the
    daemon never calls application code directly, only these three
    delivery methods (already delayed by the local IPC cost).
    """

    member: MemberId

    def deliver_message(self, group: str, sender: MemberId, payload: Any,
                        nbytes: int) -> None:
        """Deliver one group multicast to the client."""
        raise NotImplementedError

    def deliver_view(self, view: GroupView, joined: List[MemberId],
                     left: List[MemberId], crashed: bool) -> None:
        """Deliver a group membership change to the client."""
        raise NotImplementedError

    def deliver_direct(self, sender: MemberId, payload: Any,
                       nbytes: int) -> None:
        """Deliver one point-to-point message to the client."""
        raise NotImplementedError
