"""Vector clocks for the CAUSAL delivery grade.

Clocks are keyed by daemon host name: each daemon serializes the sends
of its local clients, so per-host counters capture the causal order of
group traffic exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping


class VectorClock:
    """A mutable vector clock over string-keyed counters."""

    def __init__(self, counters: Mapping[str, int] = ()):
        self._counters: Dict[str, int] = dict(counters)
        for key, value in self._counters.items():
            if value < 0:
                raise ValueError(f"negative clock entry {key}={value}")

    def get(self, key: str) -> int:
        """Counter for ``key`` (0 if absent)."""
        return self._counters.get(key, 0)

    def tick(self, key: str) -> "VectorClock":
        """Increment ``key``'s counter in place; returns self."""
        self._counters[key] = self.get(key) + 1
        return self

    def merge(self, other: Mapping[str, int]) -> "VectorClock":
        """Pointwise-max merge in place; returns self."""
        for key, value in dict(other).items():
            if value > self.get(key):
                self._counters[key] = value
        return self

    def snapshot(self) -> Dict[str, int]:
        """Immutable-ish copy suitable for stamping onto a message."""
        return dict(self._counters)

    # ------------------------------------------------------------------
    # Ordering relations
    # ------------------------------------------------------------------
    def dominates(self, other: Mapping[str, int]) -> bool:
        """self >= other pointwise."""
        other = dict(other)
        keys = set(self._counters) | set(other)
        return all(self.get(k) >= other.get(k, 0) for k in keys)

    def happened_before(self, other: "VectorClock") -> bool:
        """Strict causal precedence: self < other."""
        return other.dominates(self._counters) and not self.same_as(
            other._counters)

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock precedes the other."""
        return (not self.happened_before(other)
                and not other.happened_before(self)
                and not self.same_as(other._counters))

    def same_as(self, other: Mapping[str, int]) -> bool:
        """Pointwise equality with ``other``."""
        other = dict(other)
        keys = set(self._counters) | set(other)
        return all(self.get(k) == other.get(k, 0) for k in keys)

    # ------------------------------------------------------------------
    # Causal deliverability
    # ------------------------------------------------------------------
    def can_deliver(self, stamp: Mapping[str, int], sender: str) -> bool:
        """Causal delivery condition at a receiver with clock ``self``:
        the message is the sender's next (stamp[sender] == local+1) and
        everything the sender had seen, we have seen too."""
        stamp = dict(stamp)
        if stamp.get(sender, 0) != self.get(sender) + 1:
            return False
        for key, value in stamp.items():
            if key == sender:
                continue
            if value > self.get(key):
                return False
        return True

    def deliver(self, stamp: Mapping[str, int], sender: str) -> None:
        """Advance the local clock past a delivered message."""
        if not self.can_deliver(stamp, sender):
            raise ValueError("message not deliverable at this clock")
        self._counters[sender] = self.get(sender) + 1

    def keys(self) -> Iterable[str]:
        """Keys with non-default counters."""
        return self._counters.keys()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self.same_as(other._counters)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._counters.items()))
        return f"<VC {inner}>"
