"""Heartbeat failure detection: fixed-timeout and adaptive.

The paper's fault model includes "performance and timing faults"
(Section 3.1): messages arrive, but late.  A fixed timeout — the
classical Spread-style detector — false-suspects live daemons as soon
as network delay degrades past the threshold, collapsing membership
with no way back (daemons do not rejoin in this model).

:class:`AdaptiveDetector` instead learns the heartbeat inter-arrival
distribution (Chen/Toueg-style): the suspicion threshold is
``mean + safety_factor * std + margin`` over a sliding window, so a
*gradual* delay degradation raises the threshold before it bites,
while a genuine crash — silence, not lateness — is still detected
within one adapted timeout.

The daemon uses the fixed detector by default (matching the paper's
era); pass ``GcsCalibration(adaptive_failure_detection=True)`` to use
the adaptive one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional


class FailureDetector:
    """Interface: feed heartbeat arrivals, ask who is suspect."""

    def heard_from(self, peer: str, now: float) -> None:
        """Record that ``peer`` was heard from at time ``now``."""
        raise NotImplementedError

    def forget(self, peer: str) -> None:
        """Stop tracking ``peer`` (it left the membership)."""
        raise NotImplementedError

    def suspects(self, peers: Iterable[str], now: float) -> set:
        """Subset of ``peers`` currently suspected of having crashed."""
        raise NotImplementedError


class FixedTimeoutDetector(FailureDetector):
    """Suspect a peer after ``timeout_us`` of silence (Spread-style)."""

    def __init__(self, timeout_us: float):
        if timeout_us <= 0:
            raise ValueError("timeout must be positive")
        self.timeout_us = timeout_us
        self._last_heard: Dict[str, float] = {}

    def heard_from(self, peer: str, now: float) -> None:
        """Record a liveness observation."""
        self._last_heard[peer] = now

    def forget(self, peer: str) -> None:
        """Drop the peer's state."""
        self._last_heard.pop(peer, None)

    def silence(self, peer: str, now: float) -> float:
        """Microseconds since the peer was last heard."""
        return now - self._last_heard.get(peer, 0.0)

    def suspects(self, peers: Iterable[str], now: float) -> set:
        """Peers silent longer than the fixed timeout."""
        return {p for p in peers if self.silence(p, now) > self.timeout_us}


class AdaptiveDetector(FailureDetector):
    """Inter-arrival-statistics detector (Chen/Toueg flavour).

    Per peer, keeps the last ``window`` heartbeat inter-arrival times;
    the suspicion threshold is ``mean + safety_factor * std + margin``,
    clamped to ``[floor_us, ceiling_us]``.  Until enough samples exist
    the detector falls back to ``floor_us``... conservatively high, so
    young peers are not hair-triggered.
    """

    def __init__(self, safety_factor: float = 4.0,
                 margin_us: float = 50_000.0, window: int = 32,
                 floor_us: float = 350_000.0,
                 ceiling_us: float = 5_000_000.0):
        if safety_factor <= 0 or margin_us < 0:
            raise ValueError("bad detector parameters")
        if floor_us <= 0 or ceiling_us < floor_us:
            raise ValueError("need 0 < floor <= ceiling")
        self.safety_factor = safety_factor
        self.margin_us = margin_us
        self.window = window
        self.floor_us = floor_us
        self.ceiling_us = ceiling_us
        self._last_heard: Dict[str, float] = {}
        self._intervals: Dict[str, Deque[float]] = {}

    def heard_from(self, peer: str, now: float) -> None:
        """Record a liveness observation and its inter-arrival gap."""
        previous = self._last_heard.get(peer)
        if previous is not None and now > previous:
            gaps = self._intervals.setdefault(
                peer, deque(maxlen=self.window))
            gaps.append(now - previous)
        self._last_heard[peer] = now

    def forget(self, peer: str) -> None:
        """Drop the peer's state."""
        self._last_heard.pop(peer, None)
        self._intervals.pop(peer, None)

    def threshold_us(self, peer: str) -> float:
        """Current silence threshold for ``peer``."""
        gaps = self._intervals.get(peer)
        if not gaps or len(gaps) < 4:
            return self.floor_us
        mean = sum(gaps) / len(gaps)
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        threshold = (mean + self.safety_factor * variance ** 0.5
                     + self.margin_us)
        return min(self.ceiling_us, max(self.floor_us, threshold))

    def suspects(self, peers: Iterable[str], now: float) -> set:
        """Peers silent longer than their adapted threshold."""
        out = set()
        for peer in peers:
            silence = now - self._last_heard.get(peer, 0.0)
            if silence > self.threshold_us(peer):
                out.add(peer)
        return out
