"""Reliable FIFO links between daemon pairs.

All reliable GCS traffic (AGREED forwards and stamps, FIFO/CAUSAL
data, direct messages, flush control) travels over a
:class:`ReliableLink`: per-destination sequence numbers, in-order
delivery with an out-of-order stash, cumulative delayed ACKs, and
timer-driven retransmission.  On a lossless run the only overhead is
the occasional ACK frame; under injected loss the link recovers
transparently, which is what lets the replication layer assume
reliable multicast exactly as the paper assumes of Spread.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.net.frame import Endpoint
from repro.net.network import Network
from repro.sim.config import GcsCalibration
from repro.sim.kernel import EventHandle, Simulator

#: ACKs are delayed to amortize: one cumulative ACK per this interval.
ACK_DELAY_US = 1_500.0

#: Retransmission gives up after this many attempts (the peer is then
#: presumed dead; the membership layer will remove it soon anyway).
MAX_RETRANSMITS = 30


class ReliableLink:
    """One direction of a reliable FIFO channel between two daemons."""

    def __init__(self, sim: Simulator, network: Network,
                 calibration: GcsCalibration,
                 local: Endpoint, peer: Endpoint,
                 deliver: Callable[[Any, int], None],
                 on_close: Optional[Callable[[], None]] = None):
        self.sim = sim
        self.network = network
        self.cal = calibration
        self.local = local
        self.peer = peer
        self._deliver = deliver
        #: Invoked once when the link closes, so owners holding
        #: pre-bound ``send`` references (the daemon's per-target send
        #: cache) can drop them instead of sending into a dead link.
        self._on_close = on_close
        # Sender state.
        self._next_out = 1
        self._unacked: Dict[int, "_Pending"] = {}
        self._retransmit_timer: Optional[EventHandle] = None
        # Receiver state.
        self._next_in = 1
        self._stash: Dict[int, Any] = {}
        self._ack_timer: Optional[EventHandle] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, inner: Any, inner_bytes: int) -> None:
        """Queue ``inner`` for reliable in-order delivery at the peer."""
        if self._closed:
            return
        seq = self._next_out
        self._next_out += 1
        self._unacked[seq] = _Pending(inner, inner_bytes, attempts=0,
                                      last_sent=self.sim.now)
        self._transmit(seq)
        self._arm_retransmit()

    def _transmit(self, seq: int) -> None:
        pending = self._unacked.get(seq)
        if pending is None:
            return
        pending.attempts += 1
        pending.last_sent = self.sim.now
        from repro.gcs.messages import LinkData
        self.network.send(
            self.local, self.peer,
            LinkData(link_seq=seq, inner=pending.inner,
                     inner_bytes=pending.inner_bytes),
            payload_bytes=pending.inner_bytes + self.cal.header_bytes,
            kind="gcs.link")

    def _arm_retransmit(self) -> None:
        if self._retransmit_timer is not None and self._retransmit_timer.pending:
            return
        self._retransmit_timer = self.sim.schedule_fast(
            self.cal.retransmit_timeout_us, self._on_retransmit_timer)

    def _on_retransmit_timer(self) -> None:
        self._retransmit_timer = None
        if self._closed or not self._unacked:
            return
        # Resend only messages that have actually aged past the
        # timeout; younger ones may simply be awaiting a delayed ack.
        stale_before = self.sim.now - self.cal.retransmit_timeout_us
        for seq in sorted(self._unacked):
            pending = self._unacked[seq]
            if pending.last_sent > stale_before:
                continue
            if pending.attempts > MAX_RETRANSMITS:
                # Peer presumed dead; membership will clean up.
                self.close()
                return
            self._transmit(seq)
        self._arm_retransmit()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_link_data(self, link_seq: int, inner: Any, inner_bytes: int) -> None:
        """Handle an arriving LinkData frame from the peer."""
        if self._closed:
            return
        if link_seq < self._next_in:
            # Duplicate of something already delivered; just re-ack.
            self._schedule_ack()
            return
        self._stash[link_seq] = (inner, inner_bytes)
        while self._next_in in self._stash:
            data, nbytes = self._stash.pop(self._next_in)
            self._next_in += 1
            self._deliver(data, nbytes)
        self._schedule_ack()

    def _schedule_ack(self) -> None:
        if self._ack_timer is not None and self._ack_timer.pending:
            return
        self._ack_timer = self.sim.schedule_fast(ACK_DELAY_US, self._send_ack)

    def _send_ack(self) -> None:
        self._ack_timer = None
        if self._closed:
            return
        from repro.gcs.messages import LinkAck, estimate_control_bytes
        ack = LinkAck(cum_seq=self._next_in - 1)
        self.network.send(self.local, self.peer, ack,
                          payload_bytes=estimate_control_bytes(ack),
                          kind="gcs.ack")

    def on_ack(self, cum_seq: int) -> None:
        """Handle a cumulative ACK from the peer."""
        for seq in [s for s in self._unacked if s <= cum_seq]:
            del self._unacked[seq]

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop all timers and drop buffered state (peer dead)."""
        if self._closed:
            return
        self._closed = True
        self._unacked.clear()
        self._stash.clear()
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
        if self._ack_timer is not None:
            self._ack_timer.cancel()
        if self._on_close is not None:
            self._on_close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def unacked_count(self) -> int:
        return len(self._unacked)

    def __repr__(self) -> str:
        return (f"<ReliableLink {self.local}->{self.peer} "
                f"out={self._next_out - 1} in={self._next_in - 1} "
                f"unacked={len(self._unacked)}>")


class _Pending:
    __slots__ = ("inner", "inner_bytes", "attempts", "last_sent")

    def __init__(self, inner: Any, inner_bytes: int, attempts: int,
                 last_sent: float = 0.0):
        self.inner = inner
        self.inner_bytes = inner_bytes
        self.attempts = attempts
        self.last_sent = last_sent
