"""Group communication (the Spread-toolkit analogue).

Public surface:

- :class:`GcsDaemon` — per-host daemon (membership, ordering, flush)
- :class:`GcsClient` — per-process connection (join/watch/multicast)
- :class:`GroupListener`, :class:`CallbackListener` — delivery callbacks
- :class:`Grade` — the four Spread-style service grades
- :class:`MemberId`, :class:`GroupView`, :class:`DaemonView` — identities
- :class:`VectorClock` — causal-order stamps
- :data:`GCS_PORT` — the well-known daemon port
"""

from repro.gcs.client import CallbackListener, GcsClient, GroupListener
from repro.gcs.failure_detector import (
    AdaptiveDetector,
    FailureDetector,
    FixedTimeoutDetector,
)
from repro.gcs.daemon import GCS_PORT, GcsDaemon
from repro.gcs.messages import DaemonView, Grade, GroupView, MemberId
from repro.gcs.vector_clock import VectorClock

__all__ = [
    "AdaptiveDetector",
    "CallbackListener",
    "DaemonView",
    "FailureDetector",
    "FixedTimeoutDetector",
    "GCS_PORT",
    "GcsClient",
    "GcsDaemon",
    "Grade",
    "GroupListener",
    "GroupView",
    "MemberId",
    "VectorClock",
]
