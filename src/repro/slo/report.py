"""Operator-facing SLO renderings: status tables, alert log, HTML.

Text renderings back the ``repro slo`` CLI; the HTML fleet panel is
the per-shard complement of the observatory's journal page — one
budget bar per (spec, shard), colored by how much budget is left.
"""

from __future__ import annotations

import html as _html
from typing import List, Optional, Sequence

from repro.journal.events import JournalEvent
from repro.slo.alerts import match_fault_alerts, unmatched_alerts
from repro.slo.engine import BurnRateAlert, ErrorBudget, SloOutcome


def _ms(value_us: Optional[float]) -> str:
    if value_us is None:
        return "-"
    return f"{value_us / 1000.0:.1f}ms"


def _budget_status(budget: ErrorBudget) -> str:
    if budget.exhausted:
        return "BREACH"
    if not budget.latency_ok:
        return "LAT-BREACH"
    return "ok"


def slo_status(outcome: SloOutcome) -> str:
    """Per-shard budget table (the ``repro slo status`` body)."""
    lines: List[str] = []
    span_ms = (outcome.window_end_us - outcome.window_start_us) / 1000.0
    lines.append(f"SLO status over {span_ms:.1f}ms window "
                 f"({len(outcome.shards)} shard(s), "
                 f"{len(outcome.budgets)} objective(s))")
    header = (f"  {'shard':12s} {'spec':18s} {'target':>8s} "
              f"{'budget':>10s} {'consumed':>10s} {'left':>7s} "
              f"{'alerts':>6s}  status")
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for budget in outcome.budgets:
        n_alerts = sum(1 for a in outcome.alerts
                       if a.shard == budget.shard
                       and a.spec_name == budget.spec_name)
        left_pct = (100.0 * budget.remaining_us / budget.budget_us
                    if budget.budget_us > 0 else 0.0)
        lines.append(
            f"  {budget.shard:12s} {budget.spec_name:18s} "
            f"{budget.availability_target:8.4f} "
            f"{_ms(budget.budget_us):>10s} "
            f"{_ms(budget.consumed_us):>10s} "
            f"{left_pct:6.1f}% {n_alerts:6d}  "
            f"{_budget_status(budget)}")
        if budget.latency_target_us is not None:
            actual = (_ms(budget.latency_actual_us)
                      if budget.latency_actual_us is not None else "n/a")
            lines.append(
                f"  {'':12s}   latency p{budget.latency_p:.2f} "
                f"<= {_ms(budget.latency_target_us)} "
                f"(observed {actual})")
    if not outcome.budgets:
        lines.append("  (no shards discovered in the journal)")
    return "\n".join(lines)


def _alert_line(alert: BurnRateAlert) -> str:
    cleared = (_ms(alert.cleared_at_us)
               if alert.cleared_at_us is not None else "active")
    return (f"  {alert.shard:12s} {alert.spec_name:18s} "
            f"fired {_ms(alert.fired_at_us):>10s} "
            f"cleared {cleared:>10s} "
            f"fast {alert.fast_burn:8.1f}x slow {alert.slow_burn:8.1f}x "
            f"(threshold {alert.threshold:.1f}x)")


def slo_alerts(outcome: SloOutcome) -> str:
    """Burn-rate alert log (the ``repro slo alerts`` body)."""
    lines = [f"{len(outcome.alerts)} burn-rate alert(s)"]
    for alert in outcome.alerts:
        lines.append(_alert_line(alert))
    if not outcome.alerts:
        lines.append("  (no alerts fired)")
    return "\n".join(lines)


def slo_report(events: Sequence[JournalEvent],
               outcome: SloOutcome) -> str:
    """Full report: status + alerts + the fault/alert cross-check."""
    sections = [slo_status(outcome), "", slo_alerts(outcome), ""]
    matches = match_fault_alerts(events, outcome)
    total, spurious = unmatched_alerts(events, outcome)
    sections.append(f"fault/alert cross-check: "
                    f"{len(matches)} injected outage fault(s), "
                    f"{sum(1 for m in matches if m.ok)} consistent, "
                    f"{spurious} spurious alert(s)")
    for match in matches:
        verdict = "ok" if match.ok else "INCONSISTENT"
        expect = ("1 alert" if match.budget_exhausted
                  else "0 alerts (within budget)")
        sections.append(
            f"  {match.fault_kind:14s} -> {match.target:12s} "
            f"shard {str(match.shard):12s} at {_ms(match.at_us):>10s} "
            f"expected {expect}, saw {match.n_alerts}  [{verdict}]")
    return "\n".join(sections)


_BAR_COLOURS = {"ok": "#2f9e44", "warn": "#e8a33d", "breach": "#d64545"}


def slo_html(outcome: SloOutcome, title: str = "SLO fleet panel") -> str:
    """Self-contained HTML fleet panel: one budget bar per objective."""
    rows: List[str] = []
    for budget in outcome.budgets:
        used = (budget.consumed_us / budget.budget_us
                if budget.budget_us > 0 else 1.0)
        pct = min(used * 100.0, 100.0)
        colour = _BAR_COLOURS["ok"]
        if budget.exhausted or not budget.latency_ok:
            colour = _BAR_COLOURS["breach"]
        elif used > 0.5:
            colour = _BAR_COLOURS["warn"]
        n_alerts = sum(1 for a in outcome.alerts
                       if a.shard == budget.shard
                       and a.spec_name == budget.spec_name)
        label = (f"{_html.escape(budget.shard)} · "
                 f"{_html.escape(budget.spec_name)} · "
                 f"target {budget.availability_target:.4f} · "
                 f"{_ms(budget.consumed_us)} of "
                 f"{_ms(budget.budget_us)} spent · "
                 f"{n_alerts} alert(s)")
        rows.append(
            f'<div class="slo"><div class="label">{label}</div>'
            f'<div class="bar"><div class="fill" style="width:'
            f'{pct:.1f}%;background:{colour}"></div></div></div>')
    alerts = "".join(
        f'<li>{_html.escape(a.shard)} / {_html.escape(a.spec_name)}: '
        f'fired {_ms(a.fired_at_us)}, '
        f'{"cleared " + _ms(a.cleared_at_us) if a.cleared_at_us is not None else "still active"} '
        f'(fast {a.fast_burn:.1f}x / slow {a.slow_burn:.1f}x)</li>'
        for a in outcome.alerts) or "<li>no alerts fired</li>"
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{_html.escape(title)}</title>
<style>
body {{ font-family: system-ui, sans-serif; margin: 2em; }}
.slo {{ margin-bottom: 0.8em; }}
.label {{ font-size: 0.85em; color: #333; margin-bottom: 2px; }}
.bar {{ background: #eee; border-radius: 3px; height: 14px;
        overflow: hidden; }}
.fill {{ height: 100%; }}
ul {{ font-size: 0.85em; color: #333; }}
</style></head>
<body>
<h1>{_html.escape(title)}</h1>
<p>{len(outcome.shards)} shard(s), {len(outcome.budgets)} objective(s),
{len(outcome.breached)} breached, {len(outcome.alerts)} alert(s).</p>
{"".join(rows)}
<h2>Burn-rate alerts</h2>
<ul>{alerts}</ul>
</body></html>
"""
