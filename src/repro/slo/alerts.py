"""Fault/alert cross-check: ground truth vs the alerting plane.

The same discipline :func:`repro.journal.availability.match_faults`
applies to detection, applied one layer up: for every injected outage
fault the journal attributes to a shard, if that shard's error budget
ran dry then the burn-rate engine must have produced **exactly one**
alert covering the fault — zero means the pager stayed silent through
a budget-exhausting outage, two or more means one incident pages
twice.  Faults that stay inside budget must page zero times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.journal.availability import (
    DEFAULT_DETECTION_SLACK_US,
    OUTAGE_FAULTS,
    discover_shards,
    event_shard,
)
from repro.journal.events import JournalEvent
from repro.slo.engine import SloOutcome


@dataclass(frozen=True)
class AlertMatch:
    """One injected outage fault vs the alerts of its shard."""

    fault_kind: str
    target: str
    at_us: float
    shard: Optional[str]
    budget_exhausted: bool
    n_alerts: int

    @property
    def ok(self) -> bool:
        """Exactly one alert when the budget broke, none when not."""
        if self.shard is None:
            return True  # unattributable: no per-shard expectation
        if self.budget_exhausted:
            return self.n_alerts == 1
        return self.n_alerts == 0


def match_fault_alerts(events: Sequence[JournalEvent],
                       outcome: SloOutcome,
                       slack_us: float = DEFAULT_DETECTION_SLACK_US
                       ) -> List[AlertMatch]:
    """Cross-check every injected outage fault against the alerts.

    An alert *covers* a fault when it fired inside the fault window
    plus ``slack_us`` (burn rates need a little downtime accumulated
    before they cross the threshold, mirroring detection slack).
    """
    ordered = sorted(events, key=lambda e: (e.time_us, e.seq))
    universe = discover_shards(ordered)
    exhausted = {b.shard for b in outcome.budgets if b.exhausted}
    matches: List[AlertMatch] = []
    for event in ordered:
        if event.kind != "fault.inject":
            continue
        kind = str(event.attrs.get("fault", ""))
        if kind not in OUTAGE_FAULTS:
            continue
        at = float(event.attrs.get("at_us", event.time_us))
        until = event.attrs.get("until_us")
        deadline = (float(until) if until else at) + slack_us
        shard = event_shard(event, universe)
        n_alerts = 0
        if shard is not None:
            n_alerts = sum(
                1 for alert in outcome.alerts
                if alert.shard == shard
                and at <= alert.fired_at_us <= deadline)
        matches.append(AlertMatch(
            fault_kind=kind, target=str(event.attrs.get("target", "")),
            at_us=at, shard=shard,
            budget_exhausted=shard in exhausted, n_alerts=n_alerts))
    return matches


def unmatched_alerts(events: Sequence[JournalEvent],
                     outcome: SloOutcome,
                     slack_us: float = DEFAULT_DETECTION_SLACK_US
                     ) -> Tuple[int, int]:
    """(total alerts, alerts covering no injected fault) — the
    alerting plane's false-positive counter."""
    ordered = sorted(events, key=lambda e: (e.time_us, e.seq))
    covered = []
    for event in ordered:
        if event.kind != "fault.inject":
            continue
        at = float(event.attrs.get("at_us", event.time_us))
        until = event.attrs.get("until_us")
        covered.append((at, (float(until) if until else at) + slack_us))
    spurious = sum(
        1 for alert in outcome.alerts
        if not any(s <= alert.fired_at_us <= e for s, e in covered))
    return len(outcome.alerts), spurious
