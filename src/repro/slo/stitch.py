"""Cross-shard trace stitching.

A client request that crosses a partition-map flip is served by two
replica groups, but it is still *one* request: the shard router
re-roots the carried trace context before re-dispatching, so every
span — old shard, router hop, new shard — shares one ``trace_id``.
This module folds such a trace's router spans (``router.route`` /
``router.reroute``, each tagged with the shard it picked) into a
stitched per-request view: which shards served it, in which order,
and whether a re-route happened mid-flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.telemetry.spans import Span, spans_by_trace

#: Router span names that carry a shard routing decision.
ROUTE_SPAN_NAMES = ("router.route", "router.reroute")


@dataclass(frozen=True)
class StitchedTrace:
    """One logical client request across every shard that served it."""

    trace_id: str
    shards: Tuple[str, ...]  # routing order, duplicates collapsed
    reroutes: int
    n_spans: int
    start_us: float
    end_us: float

    @property
    def cross_shard(self) -> bool:
        """Did this request touch more than one shard?"""
        return len(self.shards) > 1

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


def stitch_traces(spans: Iterable[Span]) -> List[StitchedTrace]:
    """Fold spans into one stitched record per trace, sorted by id."""
    stitched: List[StitchedTrace] = []
    for trace_id, trace_spans in sorted(spans_by_trace(spans).items()):
        ordered = sorted(trace_spans,
                         key=lambda s: (s.start_us, s.span_id))
        shards: List[str] = []
        reroutes = 0
        for span in ordered:
            if span.name not in ROUTE_SPAN_NAMES:
                continue
            if span.name == "router.reroute":
                reroutes += 1
            shard = span.attrs.get("shard")
            if isinstance(shard, str) \
                    and (not shards or shards[-1] != shard):
                shards.append(shard)
        start = min(s.start_us for s in ordered)
        end = max((s.end_us if s.end_us is not None else s.start_us)
                  for s in ordered)
        stitched.append(StitchedTrace(
            trace_id=trace_id, shards=tuple(shards),
            reroutes=reroutes, n_spans=len(ordered),
            start_us=start, end_us=end))
    return stitched


def cross_shard_traces(spans: Iterable[Span]) -> List[StitchedTrace]:
    """Only the traces that crossed a shard boundary mid-request."""
    return [t for t in stitch_traces(spans) if t.cross_shard]


def stitch_summary(spans: Iterable[Span]) -> Dict[str, int]:
    """Fleet-level stitching counters for reports and bench digests."""
    traces = stitch_traces(spans)
    return {
        "traces": len(traces),
        "cross_shard": sum(1 for t in traces if t.cross_shard),
        "reroutes": sum(t.reroutes for t in traces),
    }
