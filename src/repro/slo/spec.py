"""Declarative service-level objectives.

An :class:`SloSpec` states what "dependable enough" means for one
shard (or every shard): an availability target over an evaluation
window, optionally a latency percentile target over the telemetry
latency histograms, plus the fast/slow burn-rate window pair the
alerting engine evaluates (the multi-window multi-burn-rate scheme
from the SRE literature: page only when *both* a short and a long
window burn budget faster than the threshold, so blips don't page
and slow leaks still do).

Specs are data, not code: they round-trip through canonical JSON so
a campaign can record exactly which objectives a verdict was computed
against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Spec applying to every shard discovered in the journal.
ALL_SHARDS = "*"


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective for one shard (or all of them).

    ``availability_target`` defines the error budget: a window of
    span ``T`` grants ``(1 - target) * T`` of tolerated downtime.
    ``latency_p``/``latency_target_us`` optionally add a latency
    objective (e.g. p99 <= 5 ms) evaluated against the merged
    ``request_latency_us`` histogram of the shard.  ``burn_threshold``
    is the budget-consumption speed (1.0 = exactly on budget) that
    must be exceeded over *both* burn windows before an alert fires.
    """

    name: str
    shard: str = ALL_SHARDS
    availability_target: float = 0.999
    latency_p: Optional[float] = None
    latency_target_us: Optional[float] = None
    fast_window_us: float = 500_000.0
    slow_window_us: float = 4_000_000.0
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an SLO needs a name")
        if not 0.0 < self.availability_target < 1.0:
            raise ConfigurationError(
                f"availability_target must be in (0, 1): "
                f"{self.availability_target}")
        if (self.latency_p is None) != (self.latency_target_us is None):
            raise ConfigurationError(
                "latency_p and latency_target_us come together")
        if self.latency_p is not None \
                and not 0.0 < self.latency_p <= 1.0:
            raise ConfigurationError(
                f"latency_p must be in (0, 1]: {self.latency_p}")
        if self.fast_window_us <= 0 or self.slow_window_us <= 0:
            raise ConfigurationError("burn windows must be positive")
        if self.fast_window_us > self.slow_window_us:
            raise ConfigurationError(
                "fast burn window must not exceed the slow one")
        if self.burn_threshold <= 0:
            raise ConfigurationError("burn_threshold must be positive")

    def budget_us(self, span_us: float) -> float:
        """Tolerated downtime over a window of ``span_us``."""
        return (1.0 - self.availability_target) * max(span_us, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (latency fields omitted when unset)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "shard": self.shard,
            "availability_target": self.availability_target,
            "fast_window_us": self.fast_window_us,
            "slow_window_us": self.slow_window_us,
            "burn_threshold": self.burn_threshold,
        }
        if self.latency_p is not None:
            out["latency_p"] = self.latency_p
            out["latency_target_us"] = self.latency_target_us
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            shard=str(data.get("shard", ALL_SHARDS)),
            availability_target=float(data.get("availability_target",
                                               0.999)),
            latency_p=(float(data["latency_p"])
                       if data.get("latency_p") is not None else None),
            latency_target_us=(float(data["latency_target_us"])
                               if data.get("latency_target_us") is not None
                               else None),
            fast_window_us=float(data.get("fast_window_us", 500_000.0)),
            slow_window_us=float(data.get("slow_window_us", 4_000_000.0)),
            burn_threshold=float(data.get("burn_threshold", 2.0)))


def default_slo_specs() -> List[SloSpec]:
    """The stock objective set: three-nines availability per shard.

    Deliberately availability-only: latency objectives need the
    telemetry registry, which not every journal-driven caller has.
    """
    return [SloSpec(name="availability-3n", shard=ALL_SHARDS,
                    availability_target=0.999)]


def load_slo_specs(path: str) -> List[SloSpec]:
    """Load a JSON spec file: a list of spec objects (or one object)."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ConfigurationError(
            f"SLO spec file {path!r} must hold a list of objects")
    return [SloSpec.from_dict(item) for item in data]
