"""repro.slo — the dependability observability plane.

Turns the raw journal/telemetry streams into operator-grade signals,
per shard: declarative SLOs (:mod:`repro.slo.spec`), error-budget
ledgers and multi-window burn-rate alerts (:mod:`repro.slo.engine`),
a fault/alert consistency cross-check (:mod:`repro.slo.alerts`),
cross-shard trace stitching (:mod:`repro.slo.stitch`) and the status
/ report / HTML renderings behind ``python -m repro slo``
(:mod:`repro.slo.report`).

Like journaling and telemetry, SLO evaluation is observation-only and
strictly post-hoc: it reads event streams, never schedules simulator
events, so enabling it changes no simulated outcome and leaves every
journal/telemetry artifact byte-identical.
"""

from repro.slo.alerts import AlertMatch, match_fault_alerts, unmatched_alerts
from repro.slo.engine import (
    DEFAULT_EVAL_STEP_US,
    BurnRateAlert,
    ErrorBudget,
    SloOutcome,
    evaluate_slos,
)
from repro.slo.report import slo_alerts, slo_html, slo_report, slo_status
from repro.slo.spec import (
    ALL_SHARDS,
    SloSpec,
    default_slo_specs,
    load_slo_specs,
)
from repro.slo.stitch import (
    StitchedTrace,
    cross_shard_traces,
    stitch_summary,
    stitch_traces,
)

__all__ = [
    "ALL_SHARDS",
    "AlertMatch",
    "BurnRateAlert",
    "DEFAULT_EVAL_STEP_US",
    "ErrorBudget",
    "SloOutcome",
    "SloSpec",
    "StitchedTrace",
    "cross_shard_traces",
    "default_slo_specs",
    "evaluate_slos",
    "load_slo_specs",
    "match_fault_alerts",
    "slo_alerts",
    "slo_html",
    "slo_report",
    "slo_status",
    "stitch_summary",
    "stitch_traces",
    "unmatched_alerts",
]
