"""The SLO engine: error-budget ledgers and burn-rate alerts.

Compiles declarative :class:`~repro.slo.spec.SloSpec`s against the
journal's per-shard availability windows:

- an **error-budget ledger** per (spec, shard): how much downtime the
  target tolerated over the window, how much the shard actually spent,
  and the instant the budget ran dry;
- **burn-rate alerts** per (spec, shard): the classic multi-window
  pair — an alert fires at the first instant both the fast and the
  slow trailing window consume budget faster than ``burn_threshold``,
  stays active while the fast window still burns, and a later breach
  opens a *new* alert.  One contiguous outage therefore produces
  exactly one alert, which is what the fault/alert cross-check in
  :mod:`repro.slo.alerts` verifies.

Everything here is pure arithmetic over the (already deterministic)
event stream: burn rates are evaluated on a fixed grid anchored at the
window start, so the same journal always yields byte-identical ledgers
— serial or parallel, like every other artifact in this repo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.journal.availability import (
    AvailabilityReport,
    discover_shards,
    per_shard_reports,
)
from repro.journal.events import JournalEvent
from repro.slo.spec import ALL_SHARDS, SloSpec, default_slo_specs

#: Burn-rate evaluation grid step: fine enough to land inside any
#: fast window the stock specs use, coarse enough to stay cheap.
DEFAULT_EVAL_STEP_US = 50_000.0


@dataclass(frozen=True)
class ErrorBudget:
    """The budget ledger of one (spec, shard) pair over one window."""

    spec_name: str
    shard: str
    availability_target: float
    window_start_us: float
    window_end_us: float
    budget_us: float
    consumed_us: float
    exhausted_at_us: Optional[float] = None
    latency_p: Optional[float] = None
    latency_target_us: Optional[float] = None
    latency_actual_us: Optional[float] = None

    @property
    def remaining_us(self) -> float:
        return max(self.budget_us - self.consumed_us, 0.0)

    @property
    def exhausted(self) -> bool:
        return self.consumed_us > self.budget_us

    @property
    def latency_ok(self) -> bool:
        """True when no latency objective applies or it is met."""
        if self.latency_target_us is None \
                or self.latency_actual_us is None:
            return True
        return self.latency_actual_us <= self.latency_target_us

    @property
    def ok(self) -> bool:
        return not self.exhausted and self.latency_ok

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready ledger row (latency fields omitted when unset)."""
        out: Dict[str, Any] = {
            "spec": self.spec_name,
            "shard": self.shard,
            "target": self.availability_target,
            "window_start_us": self.window_start_us,
            "window_end_us": self.window_end_us,
            "budget_us": self.budget_us,
            "consumed_us": self.consumed_us,
            "remaining_us": self.remaining_us,
            "exhausted": self.exhausted,
            "ok": self.ok,
        }
        if self.exhausted_at_us is not None:
            out["exhausted_at_us"] = self.exhausted_at_us
        if self.latency_target_us is not None:
            out["latency_p"] = self.latency_p
            out["latency_target_us"] = self.latency_target_us
            out["latency_actual_us"] = self.latency_actual_us
        return out


@dataclass(frozen=True)
class BurnRateAlert:
    """One burn-rate breach episode of one (spec, shard) pair."""

    spec_name: str
    shard: str
    fired_at_us: float
    cleared_at_us: Optional[float]
    fast_burn: float
    slow_burn: float
    threshold: float

    @property
    def active(self) -> bool:
        return self.cleared_at_us is None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready alert row (``cleared_at_us`` null while active)."""
        return {
            "spec": self.spec_name,
            "shard": self.shard,
            "fired_at_us": self.fired_at_us,
            "cleared_at_us": self.cleared_at_us,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class SloOutcome:
    """Everything one evaluation produced, in deterministic order."""

    budgets: Tuple[ErrorBudget, ...]
    alerts: Tuple[BurnRateAlert, ...]
    window_start_us: float
    window_end_us: float

    @property
    def shards(self) -> Tuple[str, ...]:
        return tuple(sorted({b.shard for b in self.budgets}))

    @property
    def breached(self) -> Tuple[ErrorBudget, ...]:
        return tuple(b for b in self.budgets if not b.ok)

    @property
    def ok(self) -> bool:
        return not self.breached

    def verdict(self) -> Dict[str, Any]:
        """Compact per-trial verdict for campaign records."""
        return {
            "slos": len(self.budgets),
            "breached": len(self.breached),
            "alerts": len(self.alerts),
            "ok": self.ok,
        }

    def ledger_jsonl(self) -> str:
        """Canonical JSONL of the ledger + alerts: the byte-identity
        artifact (sorted keys, compact separators, trailing newline)."""
        lines = [json.dumps(row, sort_keys=True, separators=(",", ":"))
                 for row in ([b.to_dict() for b in self.budgets]
                             + [a.to_dict() for a in self.alerts])]
        return "\n".join(lines) + ("\n" if lines else "")

    def journal_events(self, host: str = "fleet",
                       seq_start: int = 0) -> List[JournalEvent]:
        """The outcome as first-class journal events.

        ``slo.budget`` per ledger row and ``slo.alert`` per breach
        episode, ordered and sequence-stamped so they can ride in a
        JSONL artifact next to the raw stream (component ``slo``).
        """
        events: List[JournalEvent] = []
        seq = seq_start
        for budget in self.budgets:
            events.append(JournalEvent(
                seq=seq, time_us=self.window_end_us, host=host,
                component="slo", kind="slo.budget", shard=budget.shard,
                attrs=budget.to_dict()))
            seq += 1
        for alert in self.alerts:
            events.append(JournalEvent(
                seq=seq, time_us=alert.fired_at_us, host=host,
                component="slo", kind="slo.alert", shard=alert.shard,
                attrs=alert.to_dict()))
            seq += 1
        return events


def _down_intervals(report: AvailabilityReport
                    ) -> List[Tuple[float, float]]:
    return [(w.start_us, w.end_us) for w in report.windows
            if w.state == "down"]


def _bad_in(intervals: Sequence[Tuple[float, float]],
            start: float, end: float) -> float:
    """Total bad time inside ``[start, end]``."""
    total = 0.0
    for s, e in intervals:
        lo = max(s, start)
        hi = min(e, end)
        if hi > lo:
            total += hi - lo
    return total


def _exhausted_at(intervals: Sequence[Tuple[float, float]],
                  budget_us: float) -> Optional[float]:
    """Instant cumulative bad time first *exceeds* the budget."""
    spent = 0.0
    for s, e in intervals:
        if spent + (e - s) > budget_us:
            return s + (budget_us - spent)
        spent += e - s
    return None


def _burn_rate(intervals: Sequence[Tuple[float, float]], now: float,
               window_us: float, window_start_us: float,
               target: float) -> float:
    """Budget-consumption speed over the trailing window ending at
    ``now`` (1.0 = consuming exactly the tolerated rate).

    Bad time is measured only inside the observed part of the trailing
    window, but the tolerated rate always uses the *nominal* window
    span: dividing by a start-clipped span would inflate burn early in
    the observation and let a blip clear the slow window — defeating
    exactly the suppression the multi-window pair exists for.
    """
    lo = max(now - window_us, window_start_us)
    if now <= lo:
        return 0.0
    tolerated = (1.0 - target) * window_us
    if tolerated <= 0:
        return 0.0
    return _bad_in(intervals, lo, now) / tolerated


def _alerts_for(spec: SloSpec, shard: str,
                intervals: Sequence[Tuple[float, float]],
                start: float, end: float,
                eval_step_us: float) -> List[BurnRateAlert]:
    """Walk the evaluation grid and cut breach episodes into alerts."""
    alerts: List[BurnRateAlert] = []
    active: Optional[Dict[str, float]] = None
    t = start
    while True:
        t = min(t, end)
        fast = _burn_rate(intervals, t, spec.fast_window_us, start,
                          spec.availability_target)
        slow = _burn_rate(intervals, t, spec.slow_window_us, start,
                          spec.availability_target)
        if active is None:
            if fast >= spec.burn_threshold \
                    and slow >= spec.burn_threshold:
                active = {"fired_at_us": t, "fast": fast, "slow": slow}
        elif fast < spec.burn_threshold:
            alerts.append(BurnRateAlert(
                spec_name=spec.name, shard=shard,
                fired_at_us=active["fired_at_us"], cleared_at_us=t,
                fast_burn=active["fast"], slow_burn=active["slow"],
                threshold=spec.burn_threshold))
            active = None
        if t >= end:
            break
        t += eval_step_us
    if active is not None:
        alerts.append(BurnRateAlert(
            spec_name=spec.name, shard=shard,
            fired_at_us=active["fired_at_us"], cleared_at_us=None,
            fast_burn=active["fast"], slow_burn=active["slow"],
            threshold=spec.burn_threshold))
    return alerts


def _latency_actual(registry: Any, shard: str, n_shards: int,
                    spec: SloSpec) -> Optional[float]:
    """The shard's observed latency percentile, when measurable."""
    if registry is None or spec.latency_p is None:
        return None
    hist = registry.merged_histogram("request_latency_us", shard=shard)
    if hist is None and n_shards == 1:
        # Single-group deployments label latency by host/process only.
        hist = registry.merged_histogram("request_latency_us")
    if hist is None or hist.count == 0:
        return None
    return hist.quantile(spec.latency_p)


def evaluate_slos(events: Sequence[JournalEvent],
                  specs: Optional[Sequence[SloSpec]] = None,
                  window_start_us: Optional[float] = None,
                  window_end_us: Optional[float] = None,
                  registry: Any = None,
                  eval_step_us: float = DEFAULT_EVAL_STEP_US
                  ) -> SloOutcome:
    """Compile ``specs`` against the journal into one outcome.

    ``registry`` (a telemetry :class:`MetricsRegistry`) is only needed
    for latency objectives; journal-driven callers (the ``repro slo``
    CLI) evaluate availability objectives alone.
    """
    if eval_step_us <= 0:
        raise ValueError("eval_step_us must be positive")
    specs = list(specs) if specs is not None else default_slo_specs()
    ordered = sorted(events, key=lambda e: (e.time_us, e.seq))
    universe = discover_shards(ordered)
    start = 0.0 if window_start_us is None else float(window_start_us)
    end = (max([e.time_us for e in ordered], default=start)
           if window_end_us is None else float(window_end_us))
    end = max(end, start)
    reports = per_shard_reports(ordered, window_start_us=start,
                                window_end_us=end, shards=universe)

    budgets: List[ErrorBudget] = []
    alerts: List[BurnRateAlert] = []
    for spec in specs:
        if spec.shard == ALL_SHARDS:
            shards = list(universe)
        else:
            shards = [spec.shard]
        for shard in shards:
            report = reports.get(shard)
            intervals = (_down_intervals(report)
                         if report is not None else [])
            budget_us = spec.budget_us(end - start)
            consumed = _bad_in(intervals, start, end)
            budgets.append(ErrorBudget(
                spec_name=spec.name, shard=shard,
                availability_target=spec.availability_target,
                window_start_us=start, window_end_us=end,
                budget_us=budget_us, consumed_us=consumed,
                exhausted_at_us=_exhausted_at(intervals, budget_us),
                latency_p=spec.latency_p,
                latency_target_us=spec.latency_target_us,
                latency_actual_us=_latency_actual(
                    registry, shard, len(universe), spec)))
            if end > start:
                alerts.extend(_alerts_for(spec, shard, intervals,
                                          start, end, eval_step_us))
    budgets.sort(key=lambda b: (b.spec_name, b.shard))
    alerts.sort(key=lambda a: (a.spec_name, a.shard, a.fired_at_us))
    return SloOutcome(budgets=tuple(budgets), alerts=tuple(alerts),
                      window_start_us=start, window_end_us=end)
