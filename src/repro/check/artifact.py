"""Repro artifacts: violations as replayable files.

A violating schedule is only useful if someone else can *see* it.  The
artifact captures the complete identity of a schedule — scenario
parameters, policy configuration and the recorded decision trace —
plus the outcome digest and the violations found, as one sorted-keys
JSON file.  Replaying feeds the recorded decisions back through a
:class:`repro.check.policies.ReplayPolicy`; the outcome digest must
match byte-for-byte, otherwise the replay *drifted* and the artifact
is reported as stale rather than silently trusted.

:func:`minimize` greedily shrinks the scenario (fewer requests, then
a shorter horizon) while re-exploring with the same walk seed,
keeping each shrink only if the violation persists — the emitted
artifact is the smallest variant that still fails.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.check.explorer import ScheduleReport, verify_outcome
from repro.check.invariants import Violation
from repro.check.policies import RandomWalkPolicy, ReplayPolicy
from repro.check.scenario import CheckScenario, run_schedule
from repro.errors import VerificationError

#: Artifact schema version.
ARTIFACT_VERSION = 1


@dataclass
class ReproArtifact:
    """One violating schedule, frozen for replay."""

    scenario: CheckScenario
    walk_seed: int
    tie_choices: int
    delay_bound_us: float
    decisions: List[Any]
    digest: str
    violations: List[Dict[str, Any]]
    version: int = ARTIFACT_VERSION
    minimized: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (sorted-keys on serialization)."""
        return {
            "version": self.version,
            "scenario": self.scenario.to_dict(),
            "policy": {
                "walk_seed": self.walk_seed,
                "tie_choices": self.tie_choices,
                "delay_bound_us": self.delay_bound_us,
                "decisions": self.decisions,
            },
            "digest": self.digest,
            "violations": self.violations,
            "minimized": self.minimized,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReproArtifact":
        """Inverse of :meth:`to_dict`."""
        try:
            policy = data["policy"]
            return cls(
                scenario=CheckScenario.from_dict(data["scenario"]),
                walk_seed=int(policy["walk_seed"]),
                tie_choices=int(policy["tie_choices"]),
                delay_bound_us=float(policy["delay_bound_us"]),
                decisions=list(policy["decisions"]),
                digest=str(data["digest"]),
                violations=list(data["violations"]),
                version=int(data.get("version", ARTIFACT_VERSION)),
                minimized=bool(data.get("minimized", False)))
        except (KeyError, TypeError, ValueError) as exc:
            raise VerificationError(
                f"malformed repro artifact: {exc}") from exc


def artifact_from_report(report: ScheduleReport, tie_choices: int,
                         delay_bound_us: float,
                         minimized: bool = False) -> ReproArtifact:
    """Build an artifact from one violating exploration report."""
    return ReproArtifact(
        scenario=report.scenario,
        walk_seed=report.walk_seed,
        tie_choices=tie_choices,
        delay_bound_us=delay_bound_us,
        decisions=list(report.decisions),
        digest=report.digest,
        violations=[v.to_dict() for v in report.violations],
        minimized=minimized)


def write_artifact(artifact: ReproArtifact, path: str) -> None:
    """Write the artifact as sorted-keys JSON (trailing newline)."""
    with open(path, "w") as handle:
        json.dump(artifact.to_dict(), handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_artifact(path: str) -> ReproArtifact:
    """Load an artifact written by :func:`write_artifact`."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise VerificationError(
                f"repro artifact is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise VerificationError("repro artifact is not a JSON object")
    return ReproArtifact.from_dict(data)


@dataclass
class ReplayResult:
    """Outcome of replaying one artifact."""

    identical: bool
    digest: str
    expected_digest: str
    violations: List[Violation] = field(default_factory=list)

    @property
    def reproduced(self) -> bool:
        """True when the replay was byte-identical *and* the
        violations reappeared."""
        return self.identical and bool(self.violations)


def replay(artifact: ReproArtifact) -> ReplayResult:
    """Replay an artifact's schedule, decision for decision."""
    policy = ReplayPolicy(artifact.decisions,
                          delay_bound_us=artifact.delay_bound_us)
    outcome = run_schedule(artifact.scenario, policy)
    return ReplayResult(
        identical=(outcome.digest == artifact.digest),
        digest=outcome.digest,
        expected_digest=artifact.digest,
        violations=verify_outcome(outcome))


def _still_fails(scenario: CheckScenario, walk_seed: int,
                 tie_choices: int, delay_bound_us: float
                 ) -> Optional[ScheduleReport]:
    policy = RandomWalkPolicy(seed=walk_seed, tie_choices=tie_choices,
                              delay_bound_us=delay_bound_us)
    outcome = run_schedule(scenario, policy)
    violations = verify_outcome(outcome)
    if not violations:
        return None
    return ScheduleReport(walk_seed=walk_seed, scenario=scenario,
                          digest=outcome.digest, fresh=True,
                          violations=violations,
                          decisions=policy.decisions)


def minimize(artifact: ReproArtifact) -> ReproArtifact:
    """Greedily shrink an artifact's scenario while it still fails.

    Tries, in order: halving the request count (repeatedly, floor 1),
    then shortening the horizon and settle windows.  Each candidate
    re-runs the walk with the *same* policy seed; a shrink is kept
    only when some violation persists.  The result replays
    byte-identically because its decision trace is re-recorded from
    the final minimized run.
    """
    best = _still_fails(artifact.scenario, artifact.walk_seed,
                        artifact.tie_choices, artifact.delay_bound_us)
    if best is None:
        # The artifact's exact decisions are needed to fail at all
        # (the fresh walk diverged); keep it as-is but mark minimized.
        return replace(artifact, minimized=True)

    def try_shrink(candidate: CheckScenario) -> bool:
        nonlocal best
        report = _still_fails(candidate, artifact.walk_seed,
                              artifact.tie_choices,
                              artifact.delay_bound_us)
        if report is not None:
            best = report
            return True
        return False

    while best.scenario.n_requests > 1:
        candidate = replace(best.scenario,
                            n_requests=max(1, best.scenario.n_requests // 2))
        if candidate.n_requests == best.scenario.n_requests \
                or not try_shrink(candidate):
            break
    for horizon_factor in (0.5, 0.25):
        candidate = replace(
            best.scenario,
            horizon_us=best.scenario.horizon_us * horizon_factor)
        if not try_shrink(candidate):
            break
    return artifact_from_report(best, artifact.tie_choices,
                                artifact.delay_bound_us, minimized=True)
