"""Bounded schedule-space exploration with state-digest dedup.

The explorer runs the canonical scenario under a budget of random
walks — each a fresh :class:`repro.check.policies.RandomWalkPolicy`
seed plus a deterministic crash-time variation — and verifies every
schedule: linearizability of the client history against the counter
spec, the journal-level protocol invariants, and the counter
consistency cross-check.  Schedules whose outcome digest was already
seen count as revisits, not as fresh coverage, so the reported
``distinct_schedules`` honestly measures explored behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Set

from repro.check.invariants import (
    Violation,
    check_counter_consistency,
    check_invariants,
)
from repro.check.linearizability import CounterSpec, check_linearizability
from repro.check.policies import RandomWalkPolicy
from repro.check.scenario import (
    CheckScenario,
    ScheduleOutcome,
    finish_schedule,
    snapshot_schedule,
)

#: Crash-time multipliers cycled across walks, so the primary dies at
#: varied points of the request stream (deterministic per walk index).
#: The sub-0.25 factors land the crash *inside* the closed-loop load
#: window, where a reply can be lost between checkpoint stability and
#: delivery — the region that exposes duplicate-suppression bugs.
CRASH_VARIATIONS = (1.0, 0.45, 0.19, 1.6, 0.1, 0.22, 2.4, 0.15,
                    0.05, 0.2)

#: Partition-start multipliers cycled across walks of the partition
#: scenario.  The split duration (heal - start) is preserved — long
#: enough for the failure detector to fire and the minority to wedge —
#: while the cut lands at varied points of the request stream.
PARTITION_VARIATIONS = (1.0, 0.5, 1.5, 0.25, 2.0, 0.75, 1.25, 0.4,
                        1.75, 0.6)


def verify_outcome(outcome: ScheduleOutcome) -> List[Violation]:
    """Run every checker over one schedule outcome."""
    violations: List[Violation] = list(
        check_invariants(outcome.journal_events))
    counter_ops = tuple(op for op in outcome.operations
                        if op.object_key == "counter")
    lin = check_linearizability(counter_ops, CounterSpec())
    if not lin.ok:
        violations.append(Violation(
            invariant="linearizability",
            message=lin.reason,
            details={"blocked_ops": list(lin.blocked_ops),
                     "configurations_explored":
                         lin.configurations_explored}))
    violations.extend(check_counter_consistency(
        counter_ops, outcome.survivor_values))
    if outcome.truncated_rings:
        # Not a violation — but any verdict over a truncated journal
        # is advisory, so surface it alongside the violations.
        violations.append(Violation(
            invariant="journal_truncated",
            message="per-host flight-recorder rings truncated; the "
                    "journal evidence for this schedule is incomplete",
            details={"truncated_rings": outcome.truncated_rings}))
    return violations


@dataclass
class ScheduleReport:
    """One explored schedule: identity plus verification verdict."""

    walk_seed: int
    scenario: CheckScenario
    digest: str
    fresh: bool
    violations: List[Violation] = field(default_factory=list)
    decisions: List[Any] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no checker reported a violation."""
        return not self.violations


@dataclass
class ExplorationResult:
    """Aggregate outcome of one exploration run."""

    scenario: CheckScenario
    budget: int
    schedules_run: int = 0
    distinct_schedules: int = 0
    reports: List[ScheduleReport] = field(default_factory=list)

    @property
    def violating(self) -> List[ScheduleReport]:
        """Reports of schedules with at least one violation."""
        return [r for r in self.reports if not r.ok]

    @property
    def ok(self) -> bool:
        """True when every explored schedule verified clean."""
        return not self.violating


def explore(scenario: CheckScenario, budget: int = 200,
            base_walk_seed: int = 0, tie_choices: int = 4,
            delay_bound_us: float = 150.0,
            stop_on_violation: bool = True,
            progress: Optional[Any] = None) -> ExplorationResult:
    """Explore up to ``budget`` schedules of ``scenario``.

    Walk ``i`` uses policy seed ``base_walk_seed + i`` and, when the
    scenario crashes the primary, cycles the crash time through
    :data:`CRASH_VARIATIONS` — both fully determined by ``i``, so any
    violating walk is reproducible from its report alone.
    ``progress`` (optional callable) receives ``(i, report)`` after
    each walk.
    """
    result = ExplorationResult(scenario=scenario, budget=budget)
    seen_digests: Set[str] = set()
    # The setup + warmup prefix is identical for every walk (the
    # warmup runs under the identity policy; walk policies only arm
    # at the start of the load window) and for every crash-time
    # variant (the crash lands in the suffix).  Pay it once, then
    # fork an independent copy per walk.
    snapshot = snapshot_schedule(scenario)
    for i in range(budget):
        variant = scenario
        if scenario.crash_primary_at_us is not None:
            factor = CRASH_VARIATIONS[i % len(CRASH_VARIATIONS)]
            variant = replace(
                scenario,
                crash_primary_at_us=scenario.crash_primary_at_us * factor)
        if scenario.partition_at_us is not None:
            factor = PARTITION_VARIATIONS[i % len(PARTITION_VARIATIONS)]
            start = scenario.partition_at_us * factor
            duration = scenario.heal_at_us - scenario.partition_at_us
            variant = replace(variant, partition_at_us=start,
                              heal_at_us=start + duration)
        policy = RandomWalkPolicy(seed=base_walk_seed + i,
                                  tie_choices=tie_choices,
                                  delay_bound_us=delay_bound_us)
        outcome = finish_schedule(snapshot.fork(), policy,
                                  scenario=variant)
        fresh = outcome.digest not in seen_digests
        seen_digests.add(outcome.digest)
        report = ScheduleReport(
            walk_seed=base_walk_seed + i, scenario=variant,
            digest=outcome.digest, fresh=fresh,
            violations=verify_outcome(outcome),
            decisions=policy.decisions)
        result.schedules_run += 1
        result.reports.append(report)
        if progress is not None:
            progress(i, report)
        if not report.ok and stop_on_violation:
            break
    result.distinct_schedules = len(seen_digests)
    return result
