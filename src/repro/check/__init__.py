"""Schedule-space exploration and consistency verification.

The paper's safety claims — view-synchronous switch delivery, the
Fig. 5 on-the-fly style-switch protocol, and "no lost acked updates"
under crash faults — hold *per schedule*: a single deterministic run
exercises exactly one interleaving.  This subsystem searches the
schedule space instead of sampling it:

- :mod:`repro.check.policies` — pluggable kernel scheduling policies
  that perturb same-timestamp tie-breaks and add bounded message
  delays, recording every decision for byte-identical replay;
- :mod:`repro.check.history` — client-observed operation histories
  captured at the ORB boundary;
- :mod:`repro.check.linearizability` — a Wing–Gong single-object
  linearizability checker over those histories;
- :mod:`repro.check.invariants` — protocol invariant monitors over
  journal events (unique primary, view agreement, switch phase
  safety, no lost acknowledged updates);
- :mod:`repro.check.scenario` — the canonical crash/switch scenario
  and seedable protocol mutations;
- :mod:`repro.check.explorer` — the bounded random-walk exploration
  loop with state-digest deduplication;
- :mod:`repro.check.artifact` — minimized repro artifacts
  (seed + schedule-decision trace) that replay byte-identically;
- :mod:`repro.check.report` — human-readable rendering.

Layering: ``repro.check`` sits above ``repro.experiments`` (it drives
testbeds) and is imported by nothing below it; the kernel and network
only ever *duck-type* the policy object.
"""

from repro.check.artifact import (
    ReproArtifact,
    load_artifact,
    minimize,
    replay,
    write_artifact,
)
from repro.check.explorer import ExplorationResult, explore
from repro.check.history import HistoryRecorder, Operation
from repro.check.invariants import (
    Violation,
    check_counter_consistency,
    check_invariants,
)
from repro.check.linearizability import (
    CounterSpec,
    IncrementSpec,
    LinearizabilityResult,
    check_linearizability,
)
from repro.check.policies import (
    RandomWalkPolicy,
    ReplayPolicy,
    SchedulerPolicy,
)
from repro.check.report import render_exploration, render_outcome
from repro.check.scenario import (
    MUTATIONS,
    CheckScenario,
    PreparedSchedule,
    ScheduleOutcome,
    canonical_partition_scenario,
    canonical_scenario,
    finish_schedule,
    prepare_schedule,
    run_schedule,
    snapshot_schedule,
)

__all__ = [
    "CheckScenario",
    "CounterSpec",
    "ExplorationResult",
    "HistoryRecorder",
    "IncrementSpec",
    "LinearizabilityResult",
    "MUTATIONS",
    "Operation",
    "PreparedSchedule",
    "RandomWalkPolicy",
    "ReplayPolicy",
    "ReproArtifact",
    "ScheduleOutcome",
    "SchedulerPolicy",
    "Violation",
    "canonical_partition_scenario",
    "canonical_scenario",
    "check_counter_consistency",
    "check_invariants",
    "check_linearizability",
    "explore",
    "finish_schedule",
    "load_artifact",
    "minimize",
    "prepare_schedule",
    "render_exploration",
    "render_outcome",
    "replay",
    "run_schedule",
    "snapshot_schedule",
    "write_artifact",
]
