"""Wing–Gong linearizability checker for single-object histories.

Given the client-observed history of one replicated object and a
sequential specification, the checker searches for a *linearization*:
a total order of the operations that (a) respects real time — an
operation that completed before another was invoked must precede
it — and (b) makes every observed return value equal the value the
sequential spec produces at that point in the order.

Pending operations (no observed reply: the client crashed or gave
up) may take effect at any point after their invocation *or never* —
both must be explored, because a primary may have executed a request
whose reply was lost.

The search is the classic Wing–Gong enumeration with memoization on
``(state, remaining-operations)``; histories larger than
``max_operations`` are reported as *skipped* rather than silently
truncated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.check.history import Operation


class CounterSpec:
    """Sequential spec of :class:`repro.orb.CounterServant`:
    ``add(x)`` returns the post-increment value, any other operation
    (``read``) returns the current value unchanged."""

    initial_state = 0

    def apply(self, state: int, op: Operation) -> Tuple[int, int]:
        """Return ``(next_state, expected_return)`` for ``op``."""
        if op.operation == "add":
            next_state = state + int(op.payload)
            return next_state, next_state
        return state, state


class IncrementSpec:
    """Sequential spec of :class:`repro.orb.BusyServant`: *every*
    operation increments the request counter and returns it."""

    initial_state = 0

    def apply(self, state: int, op: Operation) -> Tuple[int, int]:
        """Return ``(next_state, expected_return)`` for ``op``."""
        next_state = state + 1
        return next_state, next_state


@dataclass
class LinearizabilityResult:
    """Outcome of one linearizability check."""

    ok: bool
    skipped: bool = False
    reason: str = ""
    #: A witness order of op ids when ``ok`` (completed operations
    #: plus any pending ones the witness takes effect for).
    linearization: Tuple[str, ...] = ()
    #: On failure: operations whose return value no explored order
    #: could explain (the deepest-blocked frontier).
    blocked_ops: Tuple[str, ...] = ()
    configurations_explored: int = 0


def check_linearizability(operations: Sequence[Operation], spec,
                          max_operations: int = 400
                          ) -> LinearizabilityResult:
    """Check one single-object history against a sequential spec.

    ``spec`` provides ``initial_state`` (hashable) and
    ``apply(state, op) -> (next_state, expected_return)``.
    """
    ops: List[Operation] = list(operations)
    completed_ids = frozenset(op.op_id for op in ops if not op.pending)
    if len(ops) > max_operations:
        return LinearizabilityResult(
            ok=True, skipped=True,
            reason=f"history has {len(ops)} operations "
                   f"(> max_operations={max_operations}); not checked")
    by_id: Dict[str, Operation] = {op.op_id: op for op in ops}

    Config = Tuple[object, FrozenSet[str]]
    initial: Config = (spec.initial_state, frozenset(by_id))
    visited = {initial}
    parents: Dict[Config, Tuple[Config, str]] = {}
    stack: List[Config] = [initial]
    explored = 0
    best_frontier: FrozenSet[str] = completed_ids

    while stack:
        state, remaining = stack.pop()
        explored += 1
        remaining_completed = remaining & completed_ids
        if len(remaining_completed) < len(best_frontier):
            best_frontier = remaining_completed
        if not remaining_completed:
            # Every observed return is explained; any still-remaining
            # pending operations simply never took effect.
            order: List[str] = []
            config: Config = (state, remaining)
            while config in parents:
                config, op_id = parents[config]
                order.append(op_id)
            order.reverse()
            return LinearizabilityResult(
                ok=True, linearization=tuple(order),
                configurations_explored=explored)
        # Real-time bound: an operation may be linearized next only if
        # no *other remaining completed* operation finished before it
        # was invoked.
        min_completion = min(by_id[op_id].completed_at
                             for op_id in remaining_completed)
        for op_id in remaining:
            op = by_id[op_id]
            if op.invoked_at > min_completion:
                continue
            next_state, expected = spec.apply(state, op)
            if not op.pending and op.result != expected:
                continue  # this order cannot explain the return value
            successor: Config = (next_state, remaining - {op_id})
            if successor in visited:
                continue
            visited.add(successor)
            parents[successor] = ((state, remaining), op_id)
            stack.append(successor)

    return LinearizabilityResult(
        ok=False,
        reason="no operation order explains the observed returns",
        blocked_ops=tuple(sorted(best_frontier)),
        configurations_explored=explored)
