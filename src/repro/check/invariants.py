"""Protocol invariant monitors over journal events.

Each monitor walks a trial's dependability-event journal (in record
order, which is simulator dispatch order) and reports
:class:`Violation` records for the paper's safety claims:

- **view agreement** — surviving members that install a view with the
  same ``(group, view_id)`` must agree on its membership
  (view synchrony, Section 3.1's GCS requirement);
- **unique primary** — within one member's installed view, at most
  one host acts as a warm/cold-passive primary (emits periodic
  checkpoints or a failover claim);
- **switch phase safety** — the Fig. 5 protocol: a ``switch.prepare``
  must precede its ``complete``/``rollback``, a switch never both
  completes and rolls back at one host, every host agrees on the
  switch's from/to styles, and no live host is left wedged in the
  PREPARING phase at the horizon;
- **daemon view agreement** — daemons that install the same daemon
  view id must agree on the member host set (the daemon layer's
  counterpart of group-view synchrony; two partition sides installing
  concurrent views with one id is the classic split-brain signature);
- **no split brain** — under primary-partition membership, the hosts
  of a minority partition component must never install a view drawn
  from that component alone during the partition window; the ground
  truth comes from the injector's ``fault.inject`` events, whose
  ``components`` attribute records the resolved partition cover;
- **no lost acked updates / at-most-once** — checked against the
  client history and final replica states by
  :func:`check_counter_consistency` (the journal alone cannot see
  servant state).

Monitors never raise on violations; they return data the explorer
folds into its report.  A journal whose per-host flight-recorder
rings truncated is flagged so downstream consumers know the evidence
is incomplete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.check.history import Operation


@dataclass
class Violation:
    """One detected invariant violation."""

    invariant: str
    message: str
    time_us: Optional[float] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (for repro artifacts)."""
        return {"invariant": self.invariant, "message": self.message,
                "time_us": self.time_us, "details": self.details}


def _member_host(member: str) -> str:
    """Host part of a rendered member id (``name#pid@host``)."""
    return member.rsplit("@", 1)[-1]


def departed_hosts(events: Sequence[Any]) -> Set[str]:
    """Hosts whose replica member left some group view.

    Includes both detected crashes (``crashed=True`` heartbeat-path
    removals) and local-disconnect leaves: a process kill surfaces as
    its daemon submitting a voluntary leave, indistinguishable in the
    journal from an intentional departure.  Either way the host is no
    longer a member and cannot be held to liveness obligations.
    """
    dead: Set[str] = set()
    for event in events:
        if event.kind != "membership.view":
            continue
        for member in event.attrs.get("left", ()):
            dead.add(_member_host(str(member)))
    return dead


def _check_view_agreement(events: Sequence[Any]) -> List[Violation]:
    seen: Dict[Tuple[str, int], Tuple[Tuple[str, ...], float]] = {}
    violations: List[Violation] = []
    for event in events:
        if event.kind != "membership.view":
            continue
        group = event.attrs.get("group")
        view_id = event.attrs.get("view_id")
        if group is None or view_id is None:
            continue
        members = tuple(str(m) for m in event.attrs.get("members", ()))
        key = (str(group), int(view_id))
        if key not in seen:
            seen[key] = (members, event.time_us)
        elif seen[key][0] != members:
            violations.append(Violation(
                invariant="view_agreement",
                message=f"view {view_id} of group {group!r} installed "
                        f"with different memberships",
                time_us=event.time_us,
                details={"group": group, "view_id": view_id,
                         "first": list(seen[key][0]),
                         "conflicting": list(members),
                         "host": event.host}))
    return violations


def _check_unique_primary(events: Sequence[Any]) -> List[Violation]:
    # Track each host's currently installed view per group; attribute
    # primary-only acts (periodic checkpoint publishes, failover
    # claims) to (group, view_id) and require a single acting host.
    host_view: Dict[Tuple[str, str], int] = {}
    acting: Dict[Tuple[str, int], Set[str]] = {}
    first_seen: Dict[Tuple[str, int], float] = {}
    violations: List[Violation] = []
    for event in events:
        if event.kind == "membership.view":
            group = event.attrs.get("group")
            view_id = event.attrs.get("view_id")
            if group is not None and view_id is not None:
                host_view[(event.host, str(group))] = int(view_id)
            continue
        is_primary_act = (
            (event.kind == "checkpoint.publish"
             and event.attrs.get("sync_for") is None)
            or event.kind == "failover")
        if not is_primary_act:
            continue
        # The replicator journals per process; its group is the only
        # one its host has a view for in single-group scenarios.  Use
        # the host's most recently installed view of any group.
        views = [(g, v) for (h, g), v in host_view.items()
                 if h == event.host]
        if not views:
            continue
        group, view_id = views[-1]
        key = (group, view_id)
        actors = acting.setdefault(key, set())
        actors.add(event.host)
        first_seen.setdefault(key, event.time_us)
        if len(actors) > 1:
            violations.append(Violation(
                invariant="unique_primary",
                message=f"{len(actors)} hosts acted as primary of "
                        f"group {group!r} in view {view_id}",
                time_us=event.time_us,
                details={"group": group, "view_id": view_id,
                         "hosts": sorted(actors)}))
    return violations


def _check_switch_phases(events: Sequence[Any],
                         dead: Set[str]) -> List[Violation]:
    violations: List[Violation] = []
    prepared: Dict[Tuple[str, str], Any] = {}
    finished: Dict[Tuple[str, str], str] = {}
    styles: Dict[str, Tuple[str, str]] = {}
    for event in events:
        if not event.kind.startswith("switch."):
            continue
        switch_id = str(event.attrs.get("switch_id"))
        key = (event.host, switch_id)
        pair = (str(event.attrs.get("from_style")),
                str(event.attrs.get("to_style")))
        agreed = styles.setdefault(switch_id, pair)
        if agreed != pair:
            violations.append(Violation(
                invariant="switch_style_agreement",
                message=f"hosts disagree on the styles of switch "
                        f"{switch_id!r}",
                time_us=event.time_us,
                details={"switch_id": switch_id, "first": list(agreed),
                         "conflicting": list(pair),
                         "host": event.host}))
        if event.kind == "switch.prepare":
            prepared[key] = event
        elif event.kind in ("switch.complete", "switch.rollback"):
            if key not in prepared:
                violations.append(Violation(
                    invariant="switch_phase_order",
                    message=f"{event.kind} without a preceding "
                            f"switch.prepare at {event.host}",
                    time_us=event.time_us,
                    details={"switch_id": switch_id,
                             "host": event.host}))
            if key in finished:
                violations.append(Violation(
                    invariant="switch_phase_once",
                    message=f"switch {switch_id!r} finished twice at "
                            f"{event.host} ({finished[key]} then "
                            f"{event.kind})",
                    time_us=event.time_us,
                    details={"switch_id": switch_id,
                             "host": event.host}))
            finished[key] = event.kind
    for (host, switch_id), event in prepared.items():
        if (host, switch_id) in finished or host in dead:
            continue
        violations.append(Violation(
            invariant="switch_bounded_completion",
            message=f"{host} is still in the PREPARING phase of "
                    f"switch {switch_id!r} at the horizon",
            time_us=event.time_us,
            details={"switch_id": switch_id, "host": host}))
    return violations


def _check_daemon_view_agreement(events: Sequence[Any]
                                 ) -> List[Violation]:
    """Daemon-layer view synchrony: one ``view_id``, one host set."""
    seen: Dict[int, Tuple[Tuple[str, ...], float]] = {}
    violations: List[Violation] = []
    for event in events:
        if event.kind != "daemon.install":
            continue
        view_id = event.attrs.get("view_id")
        if view_id is None:
            continue
        members = tuple(str(m) for m in event.attrs.get("members", ()))
        key = int(view_id)
        if key not in seen:
            seen[key] = (members, event.time_us)
        elif seen[key][0] != members:
            violations.append(Violation(
                invariant="daemon_view_agreement",
                message=f"daemon view {view_id} installed with "
                        f"different host sets — concurrent views",
                time_us=event.time_us,
                details={"view_id": key, "first": list(seen[key][0]),
                         "conflicting": list(members),
                         "host": event.host}))
    return violations


def _partition_windows(events: Sequence[Any]
                       ) -> List[Tuple[float, float, List[Set[str]]]]:
    """(start, end, minority components) of every injected symmetric
    partition, from the injector's ground-truth journal events."""
    windows: List[Tuple[float, float, List[Set[str]]]] = []
    for event in events:
        if event.kind != "fault.inject" \
                or event.attrs.get("fault") != "partition":
            continue
        components = [set(str(h) for h in c)
                      for c in event.attrs.get("components", ())]
        if not components:
            continue
        total = sum(len(c) for c in components)
        minorities = [c for c in components if 2 * len(c) <= total]
        at = float(event.attrs.get("at_us", event.time_us))
        until = event.attrs.get("until_us")
        if until is None:
            continue
        windows.append((at, float(until), minorities))
    return windows


def _check_no_split_brain(events: Sequence[Any]) -> List[Violation]:
    """Primary-partition safety: while a symmetric partition is up, no
    minority component may install a view drawn from itself alone.

    A late install of a *pre-partition* (wider) view racing the cut is
    not flagged — the signature of a serving minority is precisely an
    install whose member hosts all sit inside one minority component.
    """
    windows = _partition_windows(events)
    if not windows:
        return []
    violations: List[Violation] = []
    for event in events:
        if event.kind != "daemon.install":
            continue
        members = set(str(m) for m in event.attrs.get("members", ()))
        if not members:
            continue
        for at, until, minorities in windows:
            if not at < event.time_us <= until:
                continue
            for component in minorities:
                if event.host in component and members <= component:
                    violations.append(Violation(
                        invariant="no_split_brain",
                        message=f"minority component "
                                f"{sorted(component)} installed its "
                                f"own view during the partition "
                                f"window",
                        time_us=event.time_us,
                        details={"host": event.host,
                                 "view_id": event.attrs.get("view_id"),
                                 "members": sorted(members),
                                 "component": sorted(component),
                                 "window": [at, until]}))
    return violations


def check_invariants(events: Sequence[Any]) -> List[Violation]:
    """Run every journal-level monitor; returns all violations."""
    dead = departed_hosts(events)
    violations: List[Violation] = []
    violations.extend(_check_view_agreement(events))
    violations.extend(_check_daemon_view_agreement(events))
    violations.extend(_check_no_split_brain(events))
    violations.extend(_check_unique_primary(events))
    violations.extend(_check_switch_phases(events, dead))
    return violations


def check_counter_consistency(operations: Sequence[Operation],
                              survivor_values: Sequence[int],
                              object_key: str = "counter"
                              ) -> List[Violation]:
    """No-lost-acked and at-most-once over final counter states.

    Every acknowledged ``add`` must be reflected in the most advanced
    survivor's state (no lost acked updates after failover), and no
    survivor's state may exceed the distinct increments ever issued
    (retries and fan-out never double-apply).
    """
    if not survivor_values:
        return []
    adds = [op for op in operations
            if op.object_key == object_key and op.operation == "add"]
    acked = sum(int(op.payload) for op in adds if not op.pending)
    issued = sum(int(op.payload) for op in adds)
    top = max(survivor_values)
    violations: List[Violation] = []
    if top < acked:
        violations.append(Violation(
            invariant="no_lost_acked_updates",
            message=f"acknowledged increments total {acked} but the "
                    f"most advanced survivor holds {top}",
            details={"acked": acked, "survivor_values":
                     list(survivor_values)}))
    if top > issued:
        violations.append(Violation(
            invariant="at_most_once",
            message=f"a survivor holds {top} but only {issued} "
                    f"increments were ever issued — work was "
                    f"double-applied",
            details={"issued": issued, "survivor_values":
                     list(survivor_values)}))
    return violations
