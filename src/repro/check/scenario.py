"""The canonical crash/switch scenario and seedable protocol mutations.

One *schedule* is one deterministic run of the canonical scenario
under a scheduling policy: a warm-passive replicated counter with
synchronous per-request checkpoints, a closed-loop increment workload,
a mid-run Fig. 5 style switch initiated by a backup, an optional
primary crash, and a final read once the dust settles.  The scenario
is deliberately the shape under which the paper's strongest claims
hold (synchronous checkpoints with interval 1 are what make "no lost
acked updates" sound), so any violation the explorer finds is a real
protocol bug, not a modelling artifact.

``MUTATIONS`` holds deliberately broken protocol variants used to
prove the checker's teeth: the seeded mutation must be *caught*
within the default exploration budget (and the unmutated protocol
must pass with zero false positives).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check.history import HistoryRecorder, Operation
from repro.check.policies import SchedulerPolicy
from repro.errors import AdaptationError, VerificationError
from repro.experiments import Testbed, deploy_client, deploy_replica_group
from repro.faults import FaultInjector
from repro.journal.io import events_to_jsonl
from repro.orb import CounterServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.sim import SimSnapshot, default_calibration


@dataclass(frozen=True)
class CheckScenario:
    """Parameters of one canonical-scenario run.

    ``crash_primary_at_us``/``switch_at_us`` are offsets from the
    start of the load window (``None`` disables the fault); the
    ``mutation`` name selects an entry of :data:`MUTATIONS`.
    """

    n_replicas: int = 3
    n_requests: int = 8
    checkpoint_interval: int = 1
    seed: int = 0
    switch_at_us: Optional[float] = 40_000.0
    crash_primary_at_us: Optional[float] = 90_000.0
    #: Offset (from load start) at which a symmetric partition isolates
    #: the last replica host into a minority component; ``None``
    #: disables the partition.  A non-None value is a *prefix*
    #: parameter in one respect: the testbed is built with
    #: primary-partition membership enabled.
    partition_at_us: Optional[float] = None
    #: Offset at which the partition heals (required with
    #: ``partition_at_us``; must exceed it).
    heal_at_us: Optional[float] = None
    horizon_us: float = 8_000_000.0
    settle_us: float = 2_000_000.0
    retry_timeout_us: float = 120_000.0
    mutation: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready parameter dict (for repro artifacts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CheckScenario":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    @property
    def partitioned(self) -> bool:
        """True when this scenario injects a network partition."""
        return self.partition_at_us is not None


def canonical_scenario(seed: int = 0,
                       mutation: Optional[str] = None) -> CheckScenario:
    """The default crash/switch scenario the CI smoke job explores."""
    return CheckScenario(seed=seed, mutation=mutation)


def canonical_partition_scenario(seed: int = 0,
                                 mutation: Optional[str] = None
                                 ) -> CheckScenario:
    """The canonical partition scenario: no switch, no crash — instead
    a symmetric split isolates the last replica host into a minority
    for two seconds mid-load, then heals.

    Under primary-partition membership the minority daemon must wedge
    (no concurrent view), the majority must keep serving the client
    (which sits majority-side with the sequencer), and the heal must
    merge views and re-sync the minority replica — all while the
    no-split-brain, no-lost-acked and at-most-once invariants hold.
    """
    return CheckScenario(seed=seed, mutation=mutation,
                         switch_at_us=None, crash_primary_at_us=None,
                         partition_at_us=8_000.0,
                         heal_at_us=2_008_000.0)


@dataclass
class ScheduleOutcome:
    """Everything one schedule run produced, ready for checking."""

    scenario: CheckScenario
    operations: Tuple[Operation, ...]
    journal_events: List[Any]
    survivor_values: List[int]
    digest: str
    giveups: int
    events_dispatched: int = 0

    @property
    def truncated_rings(self) -> Dict[str, int]:
        """Per-host flight-recorder truncation counts found in the
        journal (non-empty means the evidence is incomplete)."""
        out: Dict[str, int] = {}
        for event in self.journal_events:
            if event.kind == "journal.truncated":
                out[event.host] = int(event.attrs.get("dropped", 0))
        return out


def _mutate_skip_final_checkpoint(replicas) -> None:
    """Fig. 5 case 1 sabotage: the passive primary skips the "one more
    checkpoint" and jumps straight to step III.  Backups never see the
    final checkpoint, so they stay wedged in the PREPARING phase (and,
    if the primary later crashes, roll back from stale state)."""
    for replica in replicas:
        replicator = replica.replicator
        original = replicator._checkpoint

        def patched(final_for=None, sync_for=None,
                    _original=original, _replicator=replicator):
            if final_for is not None:
                _replicator._complete_switch()
                return
            _original(final_for=final_for, sync_for=sync_for)

        replicator._checkpoint = patched


def _mutate_forget_seen_cache(replicas) -> None:
    """Failover sabotage: a replica restoring from a checkpoint drops
    the duplicate-suppression entries it carries, so a post-failover
    retry of an already-acknowledged request re-executes it
    (double-apply — the bug class the ``seen`` field exists to fix)."""
    for replica in replicas:
        replicator = replica.replicator
        original = replicator._receive_checkpoint

        def patched(ckpt, _original=original):
            _original(replace(ckpt, seen=()))

        replicator._receive_checkpoint = patched


def _mutate_minority_serves(replicas) -> None:
    """Partition sabotage: switch the replicas' daemons back to
    partitionable membership, so a minority component installs its own
    concurrent view and keeps serving instead of wedging — the
    split-brain the primary-partition protocol exists to prevent.
    The checker must catch it via ``no_split_brain`` (a minority-only
    view inside the injected partition window) and/or
    ``daemon_view_agreement`` (two views sharing one id)."""
    for replica in replicas:
        daemon = replica.replicator.gcs.daemon
        daemon.cal = replace(daemon.cal, primary_partition=False)


#: Named protocol mutations for checker self-tests: name -> function
#: applied to the deployed replica list before the load starts.
MUTATIONS: Dict[str, Callable[[Any], None]] = {
    "skip_final_checkpoint": _mutate_skip_final_checkpoint,
    "forget_seen_cache": _mutate_forget_seen_cache,
    "minority_serves": _mutate_minority_serves,
}


#: Simulated warmup (µs) run before the load window opens: long
#: enough for the group to form, elect a primary and settle.
WARMUP_US = 150_000.0


@dataclass
class PreparedSchedule:
    """A warmed canonical-scenario testbed, ready for its suffix.

    Produced by :func:`prepare_schedule`: the replica group is
    deployed and settled, the client joined, and ``WARMUP_US`` of
    simulated time has elapsed — everything *before* the first
    policy-dependent decision.  The warmup runs under the identity
    :class:`~repro.check.policies.SchedulerPolicy`, so a
    ``PreparedSchedule`` is byte-identical no matter which walk policy
    :func:`finish_schedule` later arms — that is what makes one
    prepared state shareable (via :class:`repro.sim.SimSnapshot`)
    across every walk of an exploration.
    """

    scenario: CheckScenario
    testbed: Any
    replicas: List[Any]
    client: Any
    history: HistoryRecorder


def prepare_schedule(scenario: CheckScenario) -> PreparedSchedule:
    """Build and warm the canonical-scenario testbed (policy-free
    prefix: identical for every schedule of ``scenario``)."""
    if scenario.mutation is not None \
            and scenario.mutation not in MUTATIONS:
        raise VerificationError(
            f"unknown mutation {scenario.mutation!r}; "
            f"known: {sorted(MUTATIONS)}")

    if scenario.partitioned and (scenario.heal_at_us is None
                                 or scenario.heal_at_us
                                 <= scenario.partition_at_us):
        raise VerificationError(
            "a partition scenario needs heal_at_us > partition_at_us")

    calibration = default_calibration()
    calibration = replace(
        calibration, journal=replace(calibration.journal, enabled=True))
    if scenario.partitioned:
        # Partition scenarios run the primary-partition membership
        # protocol (prefix parameter: it shapes the deployed daemons).
        calibration = replace(
            calibration,
            gcs=replace(calibration.gcs, primary_partition=True))
    # Always install the identity policy: the warmup then runs with
    # (0, n) sequence tuples — ordered exactly like the plain integer
    # counter — and finish_schedule() can swap in the walk policy
    # without re-running the prefix.
    testbed = Testbed.paper_testbed(
        scenario.n_replicas, 1, seed=scenario.seed,
        calibration=calibration, scheduler_policy=SchedulerPolicy())
    history = HistoryRecorder()
    testbed.sim.history = history

    style = ReplicationStyle.WARM_PASSIVE
    config = ReplicationConfig(
        style=style, group="svc",
        checkpoint_interval_requests=scenario.checkpoint_interval)
    hosts = [f"s{i:02d}" for i in range(1, scenario.n_replicas + 1)]
    replicas = deploy_replica_group(testbed, hosts, config,
                                    {"counter": CounterServant})
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="svc", expected_style=style,
        retry_timeout_us=scenario.retry_timeout_us))
    testbed.run(WARMUP_US)
    return PreparedSchedule(scenario=scenario, testbed=testbed,
                            replicas=replicas, client=client,
                            history=history)


def snapshot_schedule(scenario: CheckScenario) -> SimSnapshot:
    """Warm the canonical scenario once and freeze it: each
    :meth:`~repro.sim.SimSnapshot.fork` yields an independent
    :class:`PreparedSchedule` for :func:`finish_schedule`."""
    prepared = prepare_schedule(scenario)
    return SimSnapshot.capture(prepared, sim=prepared.testbed.sim,
                               label=f"check-seed{scenario.seed}")


def finish_schedule(prepared: PreparedSchedule,
                    policy: Optional[Any] = None,
                    scenario: Optional[CheckScenario] = None) -> ScheduleOutcome:
    """Run the policy-dependent suffix of a prepared schedule.

    Arms ``policy`` (when given), applies the scenario's protocol
    mutation, schedules the switch/crash faults and the workload, and
    runs to the horizon.  Consumes ``prepared`` — fork a fresh copy
    from a snapshot to run another suffix.

    ``scenario`` substitutes a variant whose *suffix* parameters
    (switch/crash offsets, request count, horizon, settle, mutation)
    differ from the prepared one — the explorer cycles crash-time
    variations over a single snapshot this way.  Prefix parameters
    (replicas, seed, checkpoint interval, retry timeout) must match
    the prepared state; they already shaped the warmup.
    """
    if scenario is None:
        scenario = prepared.scenario
    elif (scenario.n_replicas != prepared.scenario.n_replicas
          or scenario.seed != prepared.scenario.seed
          or scenario.checkpoint_interval
          != prepared.scenario.checkpoint_interval
          or scenario.retry_timeout_us
          != prepared.scenario.retry_timeout_us
          or scenario.partitioned != prepared.scenario.partitioned):
        raise VerificationError(
            "finish_schedule scenario differs from the prepared one "
            "in prefix parameters (replicas/seed/checkpoint/retry/"
            "partition membership)")
    testbed = prepared.testbed
    replicas = prepared.replicas
    client = prepared.client
    history = prepared.history

    if policy is not None:
        testbed.sim.swap_scheduler_policy(policy)
    # The mutation is applied post-warmup: both mutations patch
    # checkpoint handling, which first fires when the load below
    # drives requests, so this is behaviourally identical to patching
    # at deploy time — and it keeps the warmed prefix mutation-free.
    if scenario.mutation is not None:
        MUTATIONS[scenario.mutation](replicas)

    start = testbed.now

    def next_request(remaining: int) -> None:
        if remaining == 0:
            return
        client.orb_client.invoke(
            "counter", "add", 1, 32,
            lambda _reply: next_request(remaining - 1))

    if scenario.switch_at_us is not None:
        initiator = replicas[-1]

        def fire_switch() -> None:
            if not initiator.alive:
                return
            try:
                initiator.replicator.request_switch(ReplicationStyle.ACTIVE)
            except AdaptationError:
                pass  # already there (e.g. a rollback raced the timer)

        testbed.sim.schedule_at(start + scenario.switch_at_us, fire_switch)
    if scenario.crash_primary_at_us is not None \
            or scenario.partitioned:
        # Through the injector (not a raw kill) so the journal carries
        # the fault.inject ground truth the availability accounting,
        # the split-brain monitor and the SLO fault/alert cross-check
        # match against.
        injector = FaultInjector(testbed.sim, testbed.network)
        if scenario.crash_primary_at_us is not None:
            injector.crash_process_at(replicas[0].process,
                                      start + scenario.crash_primary_at_us)
        if scenario.partitioned:
            # Isolate the LAST replica host: the sequencer (lowest
            # host) and the client both stay majority-side, so the
            # majority keeps serving and no acked update can be
            # stranded minority-side.
            minority = f"s{scenario.n_replicas:02d}"
            injector.partition_at([[minority]],
                                  start + scenario.partition_at_us,
                                  start + scenario.heal_at_us)
    next_request(scenario.n_requests)
    testbed.run(scenario.horizon_us)

    # The closing read: observed through the same history capture, it
    # forces the final state onto the client-visible record.
    client.orb_client.invoke("counter", "read", 0, 32, lambda _reply: None)
    testbed.run(scenario.settle_us)

    survivor_values = [r.servants["counter"].value
                       for r in replicas if r.alive]
    journal_events = list(testbed.sim.journal.events)
    hasher = hashlib.sha256()
    hasher.update(events_to_jsonl(journal_events).encode())
    hasher.update(history.serialize().encode())
    hasher.update(repr(sorted(survivor_values)).encode())
    return ScheduleOutcome(
        scenario=scenario,
        operations=history.operations,
        journal_events=journal_events,
        survivor_values=survivor_values,
        digest=hasher.hexdigest(),
        giveups=client.replicator.failures,
        events_dispatched=testbed.sim.events_dispatched)


def run_schedule(scenario: CheckScenario,
                 policy: Optional[Any] = None) -> ScheduleOutcome:
    """Run one deterministic schedule of the canonical scenario.

    ``policy`` (a :mod:`repro.check.policies` object, or ``None`` for
    the kernel's native ordering) perturbs tie-breaks and message
    delays; everything else — workload, faults, horizon — comes from
    the scenario parameters, so (scenario, policy decisions) fully
    identify the schedule.  Equivalent to
    ``finish_schedule(prepare_schedule(scenario), policy)`` — the
    explorer shares one prepared snapshot across walks instead.
    """
    return finish_schedule(prepare_schedule(scenario), policy)
