"""Plain-text rendering of exploration and replay results.

The CLI prints these; they are deliberately terse, stable-ordered and
free of timestamps so smoke-job logs diff cleanly between runs.
"""

from __future__ import annotations

from typing import List

from repro.check.explorer import ExplorationResult, ScheduleReport
from repro.check.invariants import Violation


def _render_violations(violations: List[Violation],
                       indent: str = "  ") -> List[str]:
    lines = []
    for v in violations:
        stamp = "" if v.time_us is None else f" @ {v.time_us:.0f}us"
        lines.append(f"{indent}[{v.invariant}]{stamp} {v.message}")
    return lines


def render_outcome(report: ScheduleReport) -> str:
    """One explored/replayed schedule as a short text block."""
    lines = [
        f"schedule walk_seed={report.walk_seed} "
        f"digest={report.digest[:16]}"
        + ("" if report.fresh else " (revisit)"),
    ]
    if report.scenario.mutation:
        lines.append(f"  mutation: {report.scenario.mutation}")
    if report.ok:
        lines.append("  ok: all invariants hold, history linearizable")
    else:
        lines.append(f"  VIOLATIONS ({len(report.violations)}):")
        lines.extend(_render_violations(report.violations, indent="    "))
    return "\n".join(lines)


def render_exploration(result: ExplorationResult) -> str:
    """Summarize one exploration run as a text report."""
    lines = [
        f"explored {result.schedules_run} schedules "
        f"({result.distinct_schedules} distinct) "
        f"of budget {result.budget}",
    ]
    if result.scenario.mutation:
        lines.append(f"mutation under test: {result.scenario.mutation}")
    violating = result.violating
    if not violating:
        lines.append("verdict: PASS — every schedule verified clean")
    else:
        lines.append(f"verdict: FAIL — {len(violating)} violating "
                     f"schedule(s)")
        for report in violating:
            lines.append(render_outcome(report))
    return "\n".join(lines)
