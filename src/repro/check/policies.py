"""Kernel scheduling policies for schedule-space exploration.

The simulation kernel breaks same-timestamp ties with a monotone
sequence counter, which makes runs deterministic but pins one single
interleaving per seed.  A :class:`SchedulerPolicy` perturbs that
ordering: :meth:`SchedulerPolicy.tie_break` is consulted once per
scheduled event and sorts *before* the monotone counter, and
:meth:`SchedulerPolicy.message_delay` adds a bounded extra delay to
every transmitted frame — together they reach interleavings a fixed
tie-break never produces, while each individual run stays perfectly
deterministic and replayable.

Policies are duck-typed by the kernel (``repro.sim`` never imports
this module): anything with ``tie_break()`` and
``message_delay(wire_bytes)`` can be installed via
:meth:`repro.sim.Simulator.set_scheduler_policy`.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Union

from repro.errors import VerificationError

Decision = Union[int, float]


class SchedulerPolicy:
    """The identity policy: default tie-break order, zero extra delay.

    Installing this policy must leave every simulated outcome
    byte-identical to running with no policy at all — the golden-digest
    tests pin that property.  Subclasses override the two decision
    points.
    """

    def tie_break(self) -> int:
        """Tie-break rank for the next scheduled event (lower sorts
        first among same-timestamp events)."""
        return 0

    def message_delay(self, wire_bytes: int) -> float:
        """Extra transmission delay (µs) for the next network frame."""
        return 0.0


class RandomWalkPolicy(SchedulerPolicy):
    """One random walk through the schedule space.

    Every decision is drawn from a private :class:`random.Random`
    (independent of the scenario's workload seed) and appended to
    :attr:`decisions`, so a violating walk can be replayed exactly by
    a :class:`ReplayPolicy` — without the replay depending on the rng
    implementation at all.

    Parameters
    ----------
    seed:
        Seed of the policy's private rng: the walk's identity.
    tie_choices:
        Tie-break values are drawn uniformly from ``[0, tie_choices)``.
        Larger values shuffle same-timestamp runs more aggressively.
    delay_bound_us:
        Upper bound (µs) of the per-frame extra delay; 0 disables
        delay perturbation and explores tie-breaks only.
    """

    def __init__(self, seed: int, tie_choices: int = 4,
                 delay_bound_us: float = 0.0):
        if tie_choices < 1:
            raise VerificationError("tie_choices must be >= 1")
        if delay_bound_us < 0:
            raise VerificationError("delay_bound_us must be >= 0")
        self.seed = seed
        self.tie_choices = tie_choices
        self.delay_bound_us = delay_bound_us
        self.decisions: List[Decision] = []
        self._rng = random.Random(seed)

    def tie_break(self) -> int:
        """Draw and record one tie-break rank.

        Drawn as ``int(random() * n)`` rather than ``randrange(n)``:
        same uniform distribution, a fraction of the cost — this is
        called once per scheduled event, making it the single hottest
        call of an exploration run.
        """
        value = int(self._rng.random() * self.tie_choices)
        self.decisions.append(value)
        return value

    def message_delay(self, wire_bytes: int) -> float:
        """Draw and record one bounded extra frame delay (µs).

        ``bound * random()`` is exactly ``uniform(0, bound)`` (the
        library computes ``a + (b - a) * random()``) without the
        method-call overhead.
        """
        if self.delay_bound_us <= 0.0:
            return 0.0
        value = self.delay_bound_us * self._rng.random()
        self.decisions.append(value)
        return value


class ReplayPolicy(SchedulerPolicy):
    """Replays a recorded decision trace, decision for decision.

    Because the decisions — not the rng — are the trace, a replay is
    byte-identical to the recorded walk regardless of Python version
    or rng internals.  The policy raises :class:`VerificationError`
    when the run consumes decisions in a different order or quantity
    than recorded: that means the replayed scenario drifted from the
    recorded one, and the artifact cannot vouch for the result.
    """

    def __init__(self, decisions: Sequence[Decision],
                 delay_bound_us: float = 0.0):
        self.decisions = list(decisions)
        self.delay_bound_us = delay_bound_us
        self._cursor = 0

    def _next(self) -> Decision:
        if self._cursor >= len(self.decisions):
            raise VerificationError(
                "replay drift: the run consumed more scheduling "
                "decisions than were recorded")
        value = self.decisions[self._cursor]
        self._cursor += 1
        return value

    def tie_break(self) -> int:
        """Replay the next recorded tie-break rank."""
        value = self._next()
        if not isinstance(value, int):
            raise VerificationError(
                "replay drift: expected a tie-break decision, "
                f"recorded trace has {value!r}")
        return value

    def message_delay(self, wire_bytes: int) -> float:
        """Replay the next recorded frame delay (µs)."""
        if self.delay_bound_us <= 0.0:
            return 0.0
        value = self._next()
        if isinstance(value, int):
            raise VerificationError(
                "replay drift: expected a delay decision, "
                f"recorded trace has {value!r}")
        return float(value)

    @property
    def exhausted(self) -> bool:
        """True once every recorded decision has been replayed."""
        return self._cursor >= len(self.decisions)
