"""Client-observed operation histories.

The linearizability checker consumes the history a *client* could
observe: an operation's interval opens when the ORB client commits to
the invocation and closes when the demarshalled reply reaches
application code.  :class:`HistoryRecorder` is the enabled counterpart
of :class:`repro.sim.NullHistory` — the ORB client calls
``sim.history.invoked(...)`` / ``sim.history.completed(...)`` guarded
by ``history.enabled``, so capture is a no-op unless a checker run
attaches a recorder.

Recording is observation-only: it never schedules simulator events,
so simulated outcomes are byte-identical with capture on or off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


@dataclass
class Operation:
    """One client-observed operation interval.

    ``completed_at``/``result`` stay ``None`` for operations still
    pending when the run ended (e.g. the client gave up after a
    crash) — the checker treats those as possibly-effective,
    possibly-not.
    """

    op_id: str
    object_key: str
    operation: str
    payload: Any
    invoked_at: float
    client: str
    result: Any = None
    completed_at: Optional[float] = None

    @property
    def pending(self) -> bool:
        """True when no reply was ever observed."""
        return self.completed_at is None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (canonical form for digests/artifacts)."""
        return {
            "op_id": self.op_id,
            "object_key": self.object_key,
            "operation": self.operation,
            "payload": self.payload,
            "invoked_at": self.invoked_at,
            "client": self.client,
            "result": self.result,
            "completed_at": self.completed_at,
        }


class HistoryRecorder:
    """Enabled operation-history recorder.

    Attach with ``testbed.sim.history = HistoryRecorder()`` before the
    workload runs; operations appear in invocation order (simulator
    dispatch order, hence deterministic per schedule).
    """

    enabled = True

    def __init__(self) -> None:
        self._ops: Dict[str, Operation] = {}

    def invoked(self, op_id: str, object_key: str, operation: str,
                payload: Any, now: float, client: str = "?") -> None:
        """Open an operation interval (called by the ORB client)."""
        if op_id in self._ops:
            return  # retries reuse the request id; the interval stands
        self._ops[op_id] = Operation(
            op_id=op_id, object_key=object_key, operation=operation,
            payload=payload, invoked_at=now, client=client)

    def completed(self, op_id: str, result: Any, now: float) -> None:
        """Close an operation interval with its observed result."""
        op = self._ops.get(op_id)
        if op is None or op.completed_at is not None:
            return
        op.result = result
        op.completed_at = now

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """All recorded operations, in invocation order."""
        return tuple(self._ops.values())

    def for_object(self, object_key: str) -> Tuple[Operation, ...]:
        """Operations against one object, in invocation order."""
        return tuple(op for op in self._ops.values()
                     if op.object_key == object_key)

    @property
    def completed_count(self) -> int:
        """Number of operations whose reply was observed."""
        return sum(1 for op in self._ops.values() if not op.pending)

    @property
    def pending_count(self) -> int:
        """Number of operations still open at the end of the run."""
        return sum(1 for op in self._ops.values() if op.pending)

    def serialize(self) -> str:
        """Canonical JSONL of the history (stable across runs of the
        same schedule; feeds the schedule digest)."""
        lines = [json.dumps(op.to_dict(), sort_keys=True,
                            separators=(",", ":"))
                 for op in self._ops.values()]
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self._ops)

    def __repr__(self) -> str:
        return (f"<HistoryRecorder ops={len(self._ops)} "
                f"pending={self.pending_count}>")
