"""ORB transports.

The ORB talks to the wire through a narrow transport seam — exactly
the seam the paper's replicator exploits via library interposition:
"because the replicator mimics the TCP/IP programming interface, the
application continues to believe that it is using regular CORBA GIOP
connections" (Section 3.1).

:class:`TcpClientTransport` / :class:`TcpServerTransport` implement
the plain point-to-point path (the paper's "no interceptor" baseline).
The interposition layer and the replication layer provide drop-in
replacements for these same interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import OrbError
from repro.net.frame import Endpoint, Frame
from repro.net.network import Network
from repro.orb.accounting import COMPONENT_NETWORK
from repro.orb.giop import GiopReply, GiopRequest
from repro.sim.config import OrbCalibration
from repro.sim.host import Process
from repro.telemetry.context import context_of, set_context

ReplyHandler = Callable[[GiopReply], None]
RequestHandler = Callable[[GiopRequest, ReplyHandler], None]


@dataclass(frozen=True)
class ServiceAddress:
    """Where a service can be reached: a TCP endpoint or a GCS group."""

    kind: str  # "tcp" | "group"
    host: str = ""
    port: int = 0
    group: str = ""

    @staticmethod
    def tcp(host: str, port: int) -> "ServiceAddress":
        return ServiceAddress(kind="tcp", host=host, port=port)

    @staticmethod
    def replicated(group: str) -> "ServiceAddress":
        return ServiceAddress(kind="group", group=group)


class ClientTransport:
    """Client-side connection to one service."""

    def send_request(self, request: GiopRequest,
                     on_reply: ReplyHandler) -> None:
        """Transmit a request; ``on_reply`` fires with the reply."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (ports, group watches)."""


class ServerTransport:
    """Server-side acceptor for one service."""

    def start(self, on_request: RequestHandler) -> ServiceAddress:
        """Begin accepting requests; returns the service address."""
        raise NotImplementedError

    def stop(self) -> None:
        """Stop accepting requests."""


@dataclass(frozen=True)
class _TcpEnvelope:
    """Wire wrapper pairing a GIOP message with its reply path."""

    message: Any
    reply_to: Endpoint


class TcpClientTransport(ClientTransport):
    """Plain GIOP-over-TCP to a fixed server endpoint."""

    def __init__(self, process: Process, network: Network,
                 server: ServiceAddress,
                 calibration: Optional[OrbCalibration] = None):
        if server.kind != "tcp":
            raise OrbError(f"TcpClientTransport needs a tcp address: {server}")
        self.process = process
        self.network = network
        self.cal = calibration or OrbCalibration()
        self.server = server
        self._port = process.host.allocate_port()
        self._local = Endpoint(process.host.name, self._port)
        self._waiting: Dict[str, ReplyHandler] = {}
        process.host.bind(self._port, self._on_frame)
        process.on_kill(self.close)
        self._closed = False

    def send_request(self, request: GiopRequest,
                     on_reply: ReplyHandler) -> None:
        """Send the request as one GIOP-over-TCP frame."""
        if self._closed:
            raise OrbError("transport closed")
        if not request.oneway:
            self._waiting[request.request_id] = on_reply
        request.timeline.mark_handoff(self.process.sim.now)
        telemetry = self.process.sim.telemetry
        if telemetry.enabled:
            ctx = context_of(request)
            if ctx is not None:
                _, carried = telemetry.begin_transit(
                    ctx, "net.request", COMPONENT_NETWORK,
                    self.process.sim.now, host=self.process.host.name,
                    process=self.process.name)
                if carried is not None:
                    set_context(request, carried)
        self.network.send(
            self._local, Endpoint(self.server.host, self.server.port),
            _TcpEnvelope(message=request, reply_to=self._local),
            payload_bytes=request.payload_bytes + self.cal.giop_header_bytes,
            kind="giop.request")

    def _on_frame(self, frame: Frame) -> None:
        payload = frame.payload
        if not isinstance(payload, _TcpEnvelope):
            return
        reply = payload.message
        if not isinstance(reply, GiopReply):
            return
        handler = self._waiting.pop(reply.request_id, None)
        if handler is not None:
            reply.timeline.absorb_transit(COMPONENT_NETWORK,
                                          self.process.sim.now)
            telemetry = self.process.sim.telemetry
            if telemetry.enabled:
                ctx = context_of(reply)
                if ctx is not None:
                    telemetry.finish_inflight(ctx, self.process.sim.now)
                    set_context(reply, ctx.at_root())
            handler(reply)

    def close(self) -> None:
        """Release the reply port and drop waiters."""
        if self._closed:
            return
        self._closed = True
        self.process.host.unbind(self._port)
        self._waiting.clear()


class TcpServerTransport(ServerTransport):
    """Plain GIOP-over-TCP acceptor on a fixed port."""

    def __init__(self, process: Process, network: Network, port: int,
                 calibration: Optional[OrbCalibration] = None):
        self.process = process
        self.network = network
        self.cal = calibration or OrbCalibration()
        self.port = port
        self._on_request: Optional[RequestHandler] = None
        self._started = False
        process.on_kill(self.stop)

    def start(self, on_request: RequestHandler) -> ServiceAddress:
        """Bind the acceptor port; returns the TCP address."""
        if self._started:
            raise OrbError("server transport already started")
        self._on_request = on_request
        self.process.host.bind(self.port, self._on_frame)
        self._started = True
        return ServiceAddress.tcp(self.process.host.name, self.port)

    def _on_frame(self, frame: Frame) -> None:
        payload = frame.payload
        if not isinstance(payload, _TcpEnvelope):
            return
        request = payload.message
        if not isinstance(request, GiopRequest) or self._on_request is None:
            return
        request.timeline.absorb_transit(COMPONENT_NETWORK,
                                        self.process.sim.now)
        telemetry = self.process.sim.telemetry
        if telemetry.enabled:
            ctx = context_of(request)
            if ctx is not None:
                telemetry.finish_inflight(ctx, self.process.sim.now)
                set_context(request, ctx.at_root())
        reply_to = payload.reply_to

        def send_reply(reply: GiopReply) -> None:
            reply.timeline.mark_handoff(self.process.sim.now)
            if telemetry.enabled:
                reply_ctx = context_of(reply)
                if reply_ctx is not None:
                    _, carried = telemetry.begin_transit(
                        reply_ctx, "net.reply", COMPONENT_NETWORK,
                        self.process.sim.now,
                        host=self.process.host.name,
                        process=self.process.name)
                    if carried is not None:
                        set_context(reply, carried)
            self.network.send(
                Endpoint(self.process.host.name, self.port), reply_to,
                _TcpEnvelope(message=reply, reply_to=reply_to),
                payload_bytes=reply.payload_bytes + self.cal.giop_header_bytes,
                kind="giop.reply")

        self._on_request(request, send_reply)

    def stop(self) -> None:
        """Release the acceptor port."""
        if self._started:
            self.process.host.unbind(self.port)
            self._started = False
