"""Per-request latency attribution.

Paper Figure 3 breaks one round trip into application / ORB / group
communication / replicator components.  A :class:`RequestTimeline`
rides along with each request and reply; every layer adds the time it
spent, and transit layers use handoff marks to attribute wire +
daemon time.  The fig3 benchmark averages timelines over a run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

#: Canonical component names, matching the paper's Figure 3 slices.
COMPONENT_APPLICATION = "application"
COMPONENT_ORB = "orb"
COMPONENT_GCS = "group_communication"
COMPONENT_REPLICATOR = "replicator"
COMPONENT_NETWORK = "network"

ALL_COMPONENTS = (
    COMPONENT_APPLICATION,
    COMPONENT_ORB,
    COMPONENT_GCS,
    COMPONENT_REPLICATOR,
    COMPONENT_NETWORK,
)


class RequestTimeline:
    """Mutable accumulator of per-component latency for one request."""

    __slots__ = ("_components", "_handoff", "started_at", "completed_at")

    def __init__(self) -> None:
        self._components: Dict[str, float] = {}
        self._handoff: Optional[float] = None
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None

    def add(self, component: str, micros: float) -> None:
        """Attribute ``micros`` of latency to ``component``."""
        if micros < 0:
            raise ValueError(f"negative latency contribution: {micros}")
        self._components[component] = self._components.get(component, 0.0) + micros

    def mark_handoff(self, now: float) -> None:
        """Record the moment a message was handed to a transit layer."""
        self._handoff = now

    def absorb_transit(self, component: str, now: float) -> None:
        """Attribute the time since the last handoff to ``component``."""
        if self._handoff is None:
            return
        self.add(component, max(0.0, now - self._handoff))
        self._handoff = None

    def get(self, component: str) -> float:
        """Accumulated microseconds for ``component``."""
        return self._components.get(component, 0.0)

    def total(self) -> float:
        """Sum over all components."""
        return sum(self._components.values())

    def components(self) -> Dict[str, float]:
        """Copy of the per-component totals."""
        return dict(self._components)

    def fork(self) -> "RequestTimeline":
        """Copy for fan-out: each replica's processing of one request
        accumulates into its own fork, so first-response selection
        reports the latency of the path actually taken."""
        twin = RequestTimeline()
        twin._components = dict(self._components)
        twin._handoff = self._handoff
        twin.started_at = self.started_at
        twin.completed_at = self.completed_at
        return twin

    def merge_from(self, other: "RequestTimeline") -> None:
        """Fold another timeline's components into this one (used when
        the reply carries its own timeline back to the request's)."""
        for component, micros in other._components.items():
            self.add(component, micros)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.0f}us"
                          for k, v in sorted(self._components.items()))
        return f"<Timeline {inner}>"


def average_timelines(timelines: Iterable[RequestTimeline]) -> Dict[str, float]:
    """Mean per-component latency over a set of request timelines."""
    totals: Dict[str, float] = {}
    count = 0
    for timeline in timelines:
        count += 1
        for component, micros in timeline.components().items():
            totals[component] = totals.get(component, 0.0) + micros
    if count == 0:
        return {}
    return {component: micros / count for component, micros in totals.items()}


class ComponentStats:
    """Distribution of one component's per-request contribution."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: list = []

    def add(self, micros: float) -> None:
        """Record one latency sample in microseconds."""
        self.samples.append(micros)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean_us(self) -> float:
        """Mean of the recorded samples; 0.0 when empty."""
        return (sum(self.samples) / len(self.samples)
                if self.samples else 0.0)

    def percentile_us(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile must be in [0, 1]: {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    @property
    def p99_us(self) -> float:
        """99th-percentile sample; 0.0 when empty."""
        return self.percentile_us(0.99)


class TimelineAggregate:
    """Cross-request aggregation over :class:`RequestTimeline`\\ s.

    The structured replacement for ad-hoc averaging in benchmarks:
    feed it every completed request's timeline and read per-component
    mean/p99 plus the total round-trip distribution.
    """

    def __init__(self) -> None:
        self.per_component: Dict[str, ComponentStats] = {}
        self.totals = ComponentStats()

    def add(self, timeline: RequestTimeline) -> None:
        """Fold one completed request's timeline in."""
        for component, micros in timeline.components().items():
            self.per_component.setdefault(
                component, ComponentStats()).add(micros)
        self.totals.add(timeline.total())

    def extend(self, timelines: Iterable[RequestTimeline]
               ) -> "TimelineAggregate":
        """Fold many timelines in; returns ``self`` for chaining."""
        for timeline in timelines:
            self.add(timeline)
        return self

    @property
    def count(self) -> int:
        return self.totals.count

    def mean_us(self, component: str) -> float:
        """Mean microseconds attributed to ``component``; 0.0 if unseen."""
        stats = self.per_component.get(component)
        return stats.mean_us if stats else 0.0

    def p99_us(self, component: str) -> float:
        """p99 microseconds attributed to ``component``; 0.0 if unseen."""
        stats = self.per_component.get(component)
        return stats.p99_us if stats else 0.0

    def breakdown(self) -> Dict[str, float]:
        """Per-component means — the Fig. 3 shape, drop-in compatible
        with :func:`average_timelines`."""
        return {component: stats.mean_us
                for component, stats in self.per_component.items()}
