"""Servants: the application objects the ORB dispatches to.

A servant handles operations and optionally exposes state capture /
restore hooks.  The state hooks are what the replication layer uses
for checkpointing (warm/cold passive) and state transfer — the paper
replicates at the *process* level so "state" means the whole servant
state, not per-object fragments (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.errors import OrbError


@dataclass(frozen=True)
class ServantResult:
    """Outcome of dispatching one operation."""

    payload: Any
    payload_bytes: int
    processing_us: float

    def __post_init__(self) -> None:
        if self.payload_bytes < 0 or self.processing_us < 0:
            raise ValueError("servant result sizes/times must be >= 0")


class Servant:
    """Base servant.  Subclasses implement :meth:`dispatch`.

    State hooks default to stateless behaviour; stateful servants
    override all three so that passive replication can checkpoint them
    and active replication can state-transfer to late joiners.
    """

    def dispatch(self, operation: str, payload: Any) -> ServantResult:
        """Handle one operation; returns a :class:`ServantResult`."""
        raise NotImplementedError

    # -- state hooks ---------------------------------------------------
    def get_state(self) -> Tuple[Any, int]:
        """Return (state, state_bytes)."""
        return None, 0

    def set_state(self, state: Any) -> None:
        """Restore from a checkpoint produced by :meth:`get_state`."""

    @property
    def deterministic(self) -> bool:
        """Active replication requires deterministic servants; the
        replication layer refuses active style otherwise."""
        return True


class EchoServant(Servant):
    """The paper's micro-benchmark: echo with a tiny processing cost
    (Fig. 3 attributes only ~15 µs to the application)."""

    def __init__(self, processing_us: float = 15.0, reply_bytes: int = 64):
        self.processing_us = processing_us
        self.reply_bytes = reply_bytes
        self.calls = 0

    def dispatch(self, operation: str, payload: Any) -> ServantResult:
        """Echo the payload after the configured processing cost."""
        self.calls += 1
        return ServantResult(payload=payload, payload_bytes=self.reply_bytes,
                             processing_us=self.processing_us)

    def get_state(self) -> Tuple[Any, int]:
        """Snapshot the call counter."""
        return {"calls": self.calls}, 16

    def set_state(self, state: Any) -> None:
        """Restore the call counter."""
        self.calls = state["calls"]


class CounterServant(Servant):
    """A small stateful service used throughout tests and examples.

    Operations: ``add`` (payload = amount), ``read``.  The counter's
    value makes replica divergence immediately visible in tests.
    """

    def __init__(self, processing_us: float = 15.0,
                 state_bytes: int = 1024, reply_bytes: int = 32):
        self.value = 0
        self.processing_us = processing_us
        self.state_bytes = state_bytes
        self.reply_bytes = reply_bytes

    def dispatch(self, operation: str, payload: Any) -> ServantResult:
        """Apply ``add``/``read``; returns the current value."""
        if operation == "add":
            self.value += int(payload)
        elif operation != "read":
            raise OrbError(f"CounterServant: unknown operation {operation!r}")
        return ServantResult(payload=self.value,
                             payload_bytes=self.reply_bytes,
                             processing_us=self.processing_us)

    def get_state(self) -> Tuple[Any, int]:
        """Snapshot the counter value."""
        return {"value": self.value}, self.state_bytes

    def set_state(self, state: Any) -> None:
        """Restore the counter value."""
        self.value = state["value"]


class BusyServant(Servant):
    """Configurable-load servant for saturation experiments: every
    request costs ``processing_us`` of CPU and returns ``reply_bytes``."""

    def __init__(self, processing_us: float, reply_bytes: int = 256,
                 state_bytes: int = 4096):
        self.processing_us = processing_us
        self.reply_bytes = reply_bytes
        self.state_bytes = state_bytes
        self.requests_seen = 0

    def dispatch(self, operation: str, payload: Any) -> ServantResult:
        """Burn the configured CPU time; returns the request count."""
        self.requests_seen += 1
        return ServantResult(payload=self.requests_seen,
                             payload_bytes=self.reply_bytes,
                             processing_us=self.processing_us)

    def get_state(self) -> Tuple[Any, int]:
        """Snapshot the request counter."""
        return {"requests_seen": self.requests_seen}, self.state_bytes

    def set_state(self, state: Any) -> None:
        """Restore the request counter."""
        self.requests_seen = state["requests_seen"]


class KeyValueServant(Servant):
    """A replicated key-value store: the kind of stateful service the
    paper's middleware exists to protect.

    Operations take a ``(key, value)`` tuple (or just a key) and the
    state size is measured from the actual contents via the CDR size
    model, so checkpoint costs track the real data.

    Operations: ``put`` ((key, value)), ``get`` (key), ``delete``
    (key), ``size`` (None).
    """

    def __init__(self, processing_us: float = 25.0):
        self.data: dict = {}
        self.processing_us = processing_us

    def dispatch(self, operation: str, payload: Any) -> ServantResult:
        """Apply ``put``/``get``/``delete``/``size`` to the map."""
        from repro.orb.marshal import marshalled_size
        if operation == "put":
            key, value = payload
            self.data[key] = value
            result = "ok"
        elif operation == "get":
            result = self.data.get(payload)
        elif operation == "delete":
            result = self.data.pop(payload, None) is not None
        elif operation == "size":
            result = len(self.data)
        else:
            raise OrbError(f"KeyValueServant: unknown operation "
                           f"{operation!r}")
        return ServantResult(payload=result,
                             payload_bytes=marshalled_size(result),
                             processing_us=self.processing_us)

    def get_state(self) -> Tuple[Any, int]:
        """Snapshot the map with its measured marshalled size."""
        from repro.orb.marshal import marshalled_size
        snapshot = dict(self.data)
        return snapshot, marshalled_size(snapshot)

    def set_state(self, state: Any) -> None:
        """Replace the map from a snapshot."""
        self.data = dict(state)
