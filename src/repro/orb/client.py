"""Client-side ORB: marshalling, invocation, reply correlation."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.errors import OrbError
from repro.orb.accounting import COMPONENT_ORB
from repro.orb.giop import GiopReply, GiopRequest
from repro.orb.transport import ClientTransport
from repro.sim.config import OrbCalibration
from repro.sim.host import Process
from repro.telemetry.context import context_of, set_context


class OrbClient:
    """Invokes operations on a remote object through a transport.

    The transport may be the plain TCP one (baseline) or any of the
    interposed/replicated ones — the client code is identical either
    way, which is the paper's transparency requirement.
    """

    def __init__(self, process: Process, transport: ClientTransport,
                 calibration: Optional[OrbCalibration] = None):
        self.process = process
        self.sim = process.sim
        self.transport = transport
        self.cal = calibration or OrbCalibration()
        self._request_ids = itertools.count(1)

    def invoke(self, object_key: str, operation: str, payload: Any,
               payload_bytes: int, on_reply: Callable[[GiopReply], None],
               oneway: bool = False) -> str:
        """Marshal and send one invocation; ``on_reply`` fires with the
        demarshalled reply (never fires for oneway calls).

        Returns the request id (useful for tracing).
        """
        if payload_bytes < 0:
            raise OrbError("payload_bytes must be non-negative")
        if not self.process.alive:
            raise OrbError(f"{self.process.name} is dead")
        request_id = (f"{self.process.host.name}/{self.process.pid}"
                      f"-{next(self._request_ids)}")
        request = GiopRequest(request_id=request_id, object_key=object_key,
                              operation=operation, payload=payload,
                              payload_bytes=payload_bytes, oneway=oneway)
        request.timeline.started_at = self.sim.now
        history = self.sim.history
        if history.enabled:
            # The invocation interval opens here — at the ORB boundary,
            # before marshalling — because this is the instant the
            # client observably committed to the operation.
            history.invoked(request_id, object_key, operation, payload,
                            self.sim.now, client=self.process.name)
        marshal_us = (self.cal.marshal_fixed_us
                      + self.cal.marshal_per_byte_us * payload_bytes)
        request.timeline.add(COMPONENT_ORB, marshal_us)
        telemetry = self.sim.telemetry
        ctx = None
        marshal_span = None
        if telemetry.enabled:
            # The root span covers the whole round trip; it is the
            # trace every downstream hop joins via the service context.
            ctx = telemetry.start_trace(
                request_id, "request", host=self.process.host.name,
                process=self.process.name, now=self.sim.now,
                operation=operation)
            if ctx is not None:
                set_context(request, ctx)
                marshal_span = telemetry.begin(
                    ctx, "client.marshal", COMPONENT_ORB,
                    host=self.process.host.name,
                    process=self.process.name, now=self.sim.now)

        def after_marshal() -> None:
            if telemetry.enabled:
                telemetry.end(marshal_span, self.sim.now)
            if not self.process.alive:
                return
            self.transport.send_request(request, handle_reply)

        def handle_reply(reply: GiopReply) -> None:
            if not self.process.alive:
                return
            demarshal_us = (self.cal.demarshal_fixed_us
                            + self.cal.demarshal_per_byte_us
                            * reply.payload_bytes)
            reply.timeline.add(COMPONENT_ORB, demarshal_us)
            demarshal_span = None
            reply_ctx = context_of(reply) or ctx
            if telemetry.enabled and reply_ctx is not None:
                demarshal_span = telemetry.begin(
                    reply_ctx, "client.demarshal", COMPONENT_ORB,
                    host=self.process.host.name,
                    process=self.process.name, now=self.sim.now)

            def after_demarshal() -> None:
                if not self.process.alive:
                    return
                # The reply timeline is the request timeline (or a
                # per-replica fork of it), so it already carries the
                # outbound components — no merge needed.
                reply.timeline.started_at = request.timeline.started_at
                reply.timeline.completed_at = self.sim.now
                if telemetry.enabled and reply_ctx is not None:
                    telemetry.end(demarshal_span, self.sim.now)
                    telemetry.finish_trace(reply_ctx, self.sim.now)
                if history.enabled:
                    # The interval closes when the demarshalled reply
                    # reaches application code — the client's first
                    # chance to act on the returned value.
                    history.completed(request_id, reply.payload,
                                      self.sim.now)
                on_reply(reply)

            self.process.host.cpu.execute(demarshal_us, after_demarshal)

        self.process.host.cpu.execute(marshal_us, after_marshal)
        return request_id
