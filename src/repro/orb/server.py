"""Server-side ORB: object adapter, dispatch, state capture.

The :class:`OrbServer` is deliberately replication-unaware: replicas
run an unmodified server over a replicated transport, matching the
paper's transparency goal.  The state-capture hooks aggregate servant
state so the replication layer can checkpoint the *process* as a unit
(the paper replicates at process, not object, granularity).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.errors import OrbError
from repro.orb.accounting import COMPONENT_APPLICATION, COMPONENT_ORB
from repro.orb.giop import GiopReply, GiopRequest, ReplyStatus
from repro.orb.servant import Servant, ServantResult
from repro.orb.transport import ReplyHandler, ServerTransport, ServiceAddress
from repro.sim.config import OrbCalibration
from repro.sim.host import Process
from repro.telemetry.context import context_of


class OrbServer:
    """Hosts servants and dispatches incoming GIOP requests to them."""

    def __init__(self, process: Process, transport: ServerTransport,
                 calibration: Optional[OrbCalibration] = None):
        self.process = process
        self.sim = process.sim
        self.transport = transport
        self.cal = calibration or OrbCalibration()
        self._servants: Dict[str, Servant] = {}
        self._started = False
        self.address: Optional[ServiceAddress] = None
        self.requests_served = 0
        #: Optional lazy object adapter: :meth:`adopt_servant` uses it
        #: to materialize servants for migrated keys that were never
        #: registered here — including keys adopted with *no* state,
        #: when the source shard died before any state transfer.
        self.servant_factory: Optional[Callable[[str], Servant]] = None

    # ------------------------------------------------------------------
    # Object adapter
    # ------------------------------------------------------------------
    def register(self, object_key: str, servant: Servant) -> None:
        """Bind a servant to an object key."""
        if object_key in self._servants:
            raise OrbError(f"object key already registered: {object_key}")
        self._servants[object_key] = servant

    def servant(self, object_key: str) -> Servant:
        """Look up a registered servant by key."""
        try:
            return self._servants[object_key]
        except KeyError:
            raise OrbError(f"no servant for key: {object_key}") from None

    def start(self) -> ServiceAddress:
        """Start accepting requests; returns the service address."""
        if self._started:
            raise OrbError("server already started")
        if not self._servants and self.servant_factory is None:
            # A shard may legitimately own zero keys at deploy time if
            # it has a factory to materialize migrated ones later.
            raise OrbError("no servants registered")
        self.address = self.transport.start(self._on_request)
        self._started = True
        return self.address

    # ------------------------------------------------------------------
    # Process-level state (for the replication layer)
    # ------------------------------------------------------------------
    def capture_state(self) -> Tuple[Dict[str, Any], int]:
        """Snapshot the state of every servant; returns (state, bytes)."""
        state: Dict[str, Any] = {}
        total_bytes = 0
        for key, servant in self._servants.items():
            value, nbytes = servant.get_state()
            state[key] = value
            total_bytes += nbytes
        return state, total_bytes

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Install a snapshot produced by :meth:`capture_state`."""
        for key, value in state.items():
            servant = self._servants.get(key)
            if servant is not None:
                servant.set_state(value)

    @property
    def deterministic(self) -> bool:
        return all(s.deterministic for s in self._servants.values())

    # ------------------------------------------------------------------
    # Key-scoped state (for shard migration)
    # ------------------------------------------------------------------
    @property
    def servant_keys(self) -> Tuple[str, ...]:
        """The registered object keys, in registration order."""
        return tuple(self._servants)

    def capture_keys(self, keys: Iterable[str]) -> Tuple[Dict[str, Any],
                                                         int]:
        """Snapshot only the named servants; returns (state, bytes).
        Unregistered keys are skipped — their state lives elsewhere."""
        state: Dict[str, Any] = {}
        total_bytes = 0
        for key in keys:
            servant = self._servants.get(key)
            if servant is not None:
                value, nbytes = servant.get_state()
                state[key] = value
                total_bytes += nbytes
        return state, total_bytes

    def adopt_servant(self, key: str, state: Any = None) -> bool:
        """Take ownership of a migrated key: materialize a servant via
        :attr:`servant_factory` (unless one is already registered) and
        install ``state`` when given.  Returns False when no factory
        exists and the key is unknown — the caller journals the miss."""
        servant = self._servants.get(key)
        if servant is None:
            if self.servant_factory is None:
                return False
            servant = self.servant_factory(key)
            self._servants[key] = servant
        if state is not None:
            servant.set_state(state)
        return True

    def drop_servants(self, keys: Iterable[str]) -> int:
        """Deactivate the named servants (the source side of a shard
        migration); returns how many were actually registered."""
        dropped = 0
        for key in keys:
            if self._servants.pop(key, None) is not None:
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    def _on_request(self, request: GiopRequest,
                    send_reply: ReplyHandler) -> None:
        if not self.process.alive:
            return
        demarshal_us = (self.cal.demarshal_fixed_us
                        + self.cal.demarshal_per_byte_us
                        * request.payload_bytes)
        request.timeline.add(COMPONENT_ORB, demarshal_us + self.cal.dispatch_us)
        cpu = self.process.host.cpu
        telemetry = self.sim.telemetry
        ctx = context_of(request) if telemetry.enabled else None
        demarshal_span = telemetry.begin(
            ctx, "server.demarshal", COMPONENT_ORB,
            host=self.process.host.name, process=self.process.name,
            now=self.sim.now) if ctx is not None else None

        def dispatch() -> None:
            if ctx is not None:
                telemetry.end(demarshal_span, self.sim.now)
            if not self.process.alive:
                return
            servant = self._servants.get(request.object_key)
            if servant is None:
                self._finish(request, send_reply,
                             ServantResult(None, 0, 0.0),
                             status=ReplyStatus.NO_SUCH_OBJECT)
                return
            try:
                result = servant.dispatch(request.operation, request.payload)
            except OrbError as exc:
                self._finish(request, send_reply,
                             ServantResult(str(exc), 32, 0.0),
                             status=ReplyStatus.EXCEPTION)
                return
            request.timeline.add(COMPONENT_APPLICATION, result.processing_us)
            execute_span = telemetry.begin(
                ctx, "server.execute", COMPONENT_APPLICATION,
                host=self.process.host.name, process=self.process.name,
                now=self.sim.now) if ctx is not None else None

            def executed() -> None:
                if ctx is not None:
                    telemetry.end(execute_span, self.sim.now)
                self._finish(request, send_reply, result,
                             status=ReplyStatus.OK)

            cpu.execute(result.processing_us, executed)

        cpu.execute(demarshal_us + self.cal.dispatch_us, dispatch)

    def _finish(self, request: GiopRequest, send_reply: ReplyHandler,
                result: ServantResult, status: ReplyStatus) -> None:
        if not self.process.alive:
            return
        self.requests_served += 1
        if request.oneway:
            return
        marshal_us = (self.cal.marshal_fixed_us
                      + self.cal.marshal_per_byte_us * result.payload_bytes)
        # The reply inherits the request's service contexts (same dict:
        # reply-path layers keep updating the trace context in place).
        reply = GiopReply(request_id=request.request_id, status=status,
                          payload=result.payload,
                          payload_bytes=result.payload_bytes,
                          timeline=request.timeline,
                          service_contexts=request.service_contexts)
        reply.timeline.add(COMPONENT_ORB, marshal_us)
        telemetry = self.sim.telemetry
        ctx = context_of(reply) if telemetry.enabled else None
        marshal_span = telemetry.begin(
            ctx, "server.marshal", COMPONENT_ORB,
            host=self.process.host.name, process=self.process.name,
            now=self.sim.now) if ctx is not None else None

        def marshalled() -> None:
            if ctx is not None:
                telemetry.end(marshal_span, self.sim.now)
            if self.process.alive:
                send_reply(reply)

        self.process.host.cpu.execute(marshal_us, marshalled)
