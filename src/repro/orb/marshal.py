"""CDR-style marshalled-size estimation.

The simulation models on-wire bytes explicitly; applications can
either state payload sizes directly (as the benchmarks do, matching
the paper's controlled request/response sizes) or estimate them from
the actual Python value with :func:`marshalled_size`, which follows
CORBA CDR conventions: fixed-width primitives, 4-byte length prefixes
for strings/sequences, aligned struct members.
"""

from __future__ import annotations

from typing import Any

#: CDR sizes for primitive values.
_BOOL_BYTES = 1
_LONG_BYTES = 4       # values fitting CORBA long
_LONG_LONG_BYTES = 8  # larger integers and all floats (double)
_LENGTH_PREFIX = 4    # string/sequence length prefix
_TYPECODE_BYTES = 4   # per-member typecode tag for Any-typed fields

#: Guard against accidental deep recursion on cyclic structures.
_MAX_DEPTH = 32


def marshalled_size(value: Any, _depth: int = 0) -> int:
    """Estimated CDR-marshalled size of ``value`` in bytes.

    Supports the JSON-ish subset a servant payload normally is:
    None, bool, int, float, str, bytes, and (possibly nested) lists,
    tuples, dicts and sets thereof.  Unknown objects fall back to the
    size of their ``repr`` (a conservative text encoding).
    """
    if _depth > _MAX_DEPTH:
        raise ValueError("payload too deeply nested to marshal")
    if value is None:
        return _TYPECODE_BYTES
    if isinstance(value, bool):
        return _BOOL_BYTES + _TYPECODE_BYTES
    if isinstance(value, int):
        width = _LONG_BYTES if -2**31 <= value < 2**31 else _LONG_LONG_BYTES
        return width + _TYPECODE_BYTES
    if isinstance(value, float):
        return _LONG_LONG_BYTES + _TYPECODE_BYTES
    if isinstance(value, str):
        return _LENGTH_PREFIX + len(value.encode("utf-8")) + 1
    if isinstance(value, (bytes, bytearray)):
        return _LENGTH_PREFIX + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return _LENGTH_PREFIX + sum(
            marshalled_size(item, _depth + 1) for item in value)
    if isinstance(value, dict):
        total = _LENGTH_PREFIX
        for key, item in value.items():
            total += marshalled_size(key, _depth + 1)
            total += marshalled_size(item, _depth + 1)
        return total
    # Fallback: encode like a string.
    return _LENGTH_PREFIX + len(repr(value).encode("utf-8")) + 1


def padded(size: int, alignment: int = 8) -> int:
    """Round ``size`` up to the CDR alignment boundary."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    remainder = size % alignment
    return size if remainder == 0 else size + alignment - remainder
