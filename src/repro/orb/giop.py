"""GIOP-like request/reply messages of the miniature ORB.

Sizes are modelled explicitly: ``payload_bytes`` is the marshalled
argument/result size and the transport adds the GIOP header.  The
timeline object rides along with each message so every layer can
attribute its latency contribution (paper Fig. 3).

``service_contexts`` models GIOP's service-context list: out-of-band
key/value metadata that middleware layers attach without the
application noticing.  The telemetry layer stores its trace context
there (see :mod:`repro.telemetry.context`); replies inherit the
request's contexts so the trace survives the round trip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.orb.accounting import RequestTimeline


class ReplyStatus(enum.Enum):
    """Outcome classification of a GIOP reply."""
    OK = "ok"
    EXCEPTION = "exception"
    NO_SUCH_OBJECT = "no_such_object"


@dataclass(frozen=True)
class GiopRequest:
    """One marshalled invocation."""

    request_id: str
    object_key: str
    operation: str
    payload: Any
    payload_bytes: int
    oneway: bool = False
    timeline: RequestTimeline = field(default_factory=RequestTimeline,
                                      compare=False)
    service_contexts: Dict[str, Any] = field(default_factory=dict,
                                             compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    def fork(self) -> "GiopRequest":
        """Copy with a forked timeline, for fan-out to replicas.

        Service contexts are copied too (each replica updates its own
        trace context independently of its siblings).
        """
        from dataclasses import replace
        return replace(self, timeline=self.timeline.fork(),
                       service_contexts=dict(self.service_contexts))


@dataclass(frozen=True)
class GiopReply:
    """One marshalled result."""

    request_id: str
    status: ReplyStatus
    payload: Any
    payload_bytes: int
    #: Replication metadata piggybacked on replies (replica identity,
    #: current style/primary) so clients can track the server group
    #: configuration without extra round trips.
    replica_info: Optional[dict] = None
    timeline: RequestTimeline = field(default_factory=RequestTimeline,
                                      compare=False)
    service_contexts: Dict[str, Any] = field(default_factory=dict,
                                             compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
