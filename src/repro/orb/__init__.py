"""Miniature ORB (the TAO analogue).

Public surface:

- :class:`OrbClient`, :class:`OrbServer` — invocation endpoints
- :class:`GiopRequest`, :class:`GiopReply`, :class:`ReplyStatus`
- :class:`Servant`, :class:`ServantResult` and stock servants
- :class:`ServiceAddress`, :class:`TcpClientTransport`,
  :class:`TcpServerTransport` — the transport seam the replicator
  interposes on
- :class:`RequestTimeline` — per-request latency attribution (Fig. 3)
"""

from repro.orb.accounting import (
    ALL_COMPONENTS,
    COMPONENT_APPLICATION,
    COMPONENT_GCS,
    COMPONENT_NETWORK,
    COMPONENT_ORB,
    COMPONENT_REPLICATOR,
    ComponentStats,
    RequestTimeline,
    TimelineAggregate,
    average_timelines,
)
from repro.orb.client import OrbClient
from repro.orb.giop import GiopReply, GiopRequest, ReplyStatus
from repro.orb.marshal import marshalled_size, padded
from repro.orb.servant import (
    BusyServant,
    CounterServant,
    EchoServant,
    KeyValueServant,
    Servant,
    ServantResult,
)
from repro.orb.server import OrbServer
from repro.orb.transport import (
    ClientTransport,
    ServerTransport,
    ServiceAddress,
    TcpClientTransport,
    TcpServerTransport,
)

__all__ = [
    "ALL_COMPONENTS",
    "BusyServant",
    "COMPONENT_APPLICATION",
    "COMPONENT_GCS",
    "COMPONENT_NETWORK",
    "COMPONENT_ORB",
    "COMPONENT_REPLICATOR",
    "ClientTransport",
    "ComponentStats",
    "CounterServant",
    "EchoServant",
    "GiopReply",
    "GiopRequest",
    "KeyValueServant",
    "OrbClient",
    "OrbServer",
    "ReplyStatus",
    "RequestTimeline",
    "Servant",
    "ServantResult",
    "ServerTransport",
    "ServiceAddress",
    "TcpClientTransport",
    "TcpServerTransport",
    "TimelineAggregate",
    "average_timelines",
    "marshalled_size",
    "padded",
]
