"""Run a small fault-injection campaign programmatically.

The CLI equivalent is::

    python -m repro campaign examples/campaign_spec.json --workers 4

This script builds the spec in code instead, registers a custom
composite fault load, runs the campaign serially, and prints the
Pareto front — the minimal end-to-end tour of the campaign API.
"""

import os
import tempfile

from repro.campaign import (
    CampaignSpec,
    DelaySpike,
    LossBurst,
    ResultsStore,
    aggregate_scores,
    pareto_front,
    register_load,
    render_pareto,
    render_scores,
    run_campaign,
    to_design_space,
)


def main() -> None:
    # A composite load: a loss burst with a delay spike on its heels.
    register_load("flaky_lan", (
        LossBurst(start_fraction=0.2, duration_fraction=0.1, rate=0.7),
        DelaySpike(start_fraction=0.35, duration_fraction=0.2,
                   extra_us=4_000.0),
    ), replace=True)

    spec = CampaignSpec(
        name="example-inline",
        styles=["active", "warm_passive"],
        replica_counts=[2, 3],
        fault_loads=["none", "process_crash", "flaky_lan"],
        seeds=[0],
        n_clients=2,
        duration_us=600_000.0,
        rate_per_s=120.0,
    )

    results_path = os.path.join(tempfile.gettempdir(),
                                "repro_example_campaign.jsonl")
    store = ResultsStore(results_path)
    store.clear()

    summary = run_campaign(
        spec, store, workers=1,
        progress=lambda done, total, record: print(
            f"  [{done}/{total}] {record.trial_id}: {record.status}"))
    print(f"\nran {summary.ran} trials in {summary.elapsed_s:.1f}s "
          f"-> {results_path}")

    scores = aggregate_scores(store.records())
    print()
    print(render_scores(scores))
    print()
    print(render_pareto(scores))

    space = to_design_space(scores)
    print(f"\ndesign-space coverage volume: "
          f"{space.coverage_volume():.3f}")
    best = pareto_front(scores)[0]
    print(f"most dependable configuration: {best.config_key} "
          f"(dependability {best.dependability:.4f})")


if __name__ == "__main__":
    main()
