#!/usr/bin/env python
"""The scalability high-level knob (paper Section 4.3, Fig. 8, Table 2).

Three steps, exactly as the paper prescribes:

1. **Profile** — measure latency and bandwidth for every combination
   of replication style, redundancy level and client count (Fig. 7).
2. **Synthesize** — apply the requirements (latency <= 7000 us,
   bandwidth <= 3 MB/s, maximize fault-tolerance, break ties by the
   cost heuristic) to derive the policy table (Table 2).
3. **Tune** — drive a live system through the high-level knob: the
   operator says "N clients", the knob sets the replication style and
   replica count.

Run:  python examples/scalability_tuning.py
(The profiling sweep simulates 20 configurations; give it ~a minute.)
"""

from repro.core import (
    Constraints,
    CostFunction,
    NumReplicasKnob,
    ReplicationStyleKnob,
    ScalabilityKnob,
    ScalabilityPolicy,
)
from repro.errors import ContractViolation
from repro.experiments import (
    Testbed,
    build_profile,
    deploy_client,
    deploy_replica,
)
from repro.orb import CounterServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicaFactory,
    ReplicationConfig,
    ReplicationStyle,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Step 1: gather the empirical profile (Fig. 7 sweep).
    # ------------------------------------------------------------------
    print("profiling: 2 styles x {2,3} replicas x 1..5 clients ...")
    profile, results = build_profile(n_requests=100, seed=0)
    print(f"  {len(profile)} configurations measured\n")

    # ------------------------------------------------------------------
    # Step 2: synthesize the policy under the paper's requirements.
    # ------------------------------------------------------------------
    constraints = Constraints(max_latency_us=7000.0,
                              max_bandwidth_mbps=3.0)
    policy = ScalabilityPolicy.synthesize(profile, constraints,
                                          CostFunction())
    print("synthesized policy (paper Table 2):")
    print(f"{'Ncli':>4s} {'config':>8s} {'latency[us]':>12s} "
          f"{'bw[MB/s]':>10s} {'faults':>7s} {'cost':>7s}")
    for entry in policy.table():
        print(f"{entry.n_clients:4d} {entry.config.label:>8s} "
              f"{entry.latency_us:12.1f} {entry.bandwidth_mbps:10.3f} "
              f"{entry.faults_tolerated:7d} {entry.cost:7.3f}")
    print(f"(paper's Table 2 pattern: A(3) A(3) P(3) P(3) P(2))\n")

    # ------------------------------------------------------------------
    # Step 3: drive a live system through the high-level knob.
    # ------------------------------------------------------------------
    testbed = Testbed.paper_testbed(4, 1, seed=1)
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="svc")
    style_knob = ReplicationStyleKnob([])

    def spawn(host):
        replica = deploy_replica(testbed, host.name, config,
                                 {"counter": CounterServant},
                                 process_name=f"svc@{host.name}")
        style_knob.add_replica(replica.replicator)
        return replica

    manager = testbed.connect(testbed.spawn("w01", "mgr"))
    hosts = [testbed.hosts[f"s{i:02d}"] for i in range(1, 5)]
    factory = ReplicaFactory(manager, "svc", hosts, spawn, target=2,
                             calibration=testbed.calibration.replication)
    deploy_client(testbed, "w01", ClientReplicationConfig(group="svc"))
    testbed.run(3_000_000)

    knob = ScalabilityKnob(policy, style_knob,
                           NumReplicasKnob(factory))
    for n_clients in (1, 4):
        knob.set(n_clients)
        testbed.run(4_000_000)
        entry = knob.last_entry
        print(f"scalability knob <- {n_clients} clients: "
              f"policy selects {entry.config.label}; live system is now "
              f"style={style_knob.get().value}, "
              f"replicas={factory.live_count}")

    # Beyond the profiled range the policy must refuse and tell the
    # operator (Section 4.3's closing point).
    try:
        policy.best_configuration(policy.max_supported_clients() + 1)
    except (ContractViolation, Exception) as exc:
        print(f"\nbeyond the supported load the operator is notified:"
              f"\n  {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
