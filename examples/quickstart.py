#!/usr/bin/env python
"""Quickstart: transparently replicate an unmodified service.

Builds the paper's testbed (simulated hosts + Spread-like group
communication + mini-ORB), deploys a counter service with three
active replicas, invokes it from a replication-unaware client, then
crashes a replica mid-stream and shows that the client never notices
— the transparency goal of Section 3.1.

Run:  python examples/quickstart.py
"""

from repro.experiments import (
    Testbed,
    deploy_client,
    deploy_replica_group,
)
from repro.orb import CounterServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)


def main() -> None:
    # 1. A simulated LAN: three server hosts, one client host, each
    #    running a group-communication daemon.
    testbed = Testbed.paper_testbed(n_server_hosts=3, n_client_hosts=1,
                                    seed=42)

    # 2. Three active replicas of an ordinary CounterServant.  The
    #    servant knows nothing about replication; the replicator sits
    #    under the ORB at the transport seam.
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="svc")
    replicas = deploy_replica_group(testbed, ["s01", "s02", "s03"],
                                    config, {"counter": CounterServant})

    # 3. An ordinary client; its ORB talks to the replicated transport
    #    exactly as it would to a single TCP server.
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="svc", expected_style=ReplicationStyle.ACTIVE))
    testbed.run(100_000)

    def invoke(operation, payload):
        replies = []
        client.orb_client.invoke("counter", operation, payload, 32,
                                 replies.append)
        testbed.run(2_000_000)
        reply = replies[0]
        rtt = reply.timeline.completed_at - reply.timeline.started_at
        print(f"  {operation}({payload}) -> {reply.payload}   "
              f"[{rtt:.0f} us]")
        return reply

    print("invoking the replicated counter:")
    invoke("add", 10)
    invoke("add", 5)

    print("\nreplica states (all identical — state-machine replication):")
    for replica in replicas:
        print(f"  {replica.process.name}: "
              f"value={replica.servants['counter'].value}")

    print("\ncrashing replica svc-r2 ...")
    replicas[1].crash()

    print("client keeps working, no retries needed:")
    invoke("add", 7)
    invoke("read", None)
    print(f"  client retries so far: {client.replicator.retries}")

    print("\nsurviving replica states:")
    for replica in replicas:
        if replica.alive:
            print(f"  {replica.process.name}: "
                  f"value={replica.servants['counter'].value}")

    print("\nper-component latency of the last request (paper Fig. 3):")
    reply = invoke("read", None)
    for component, micros in sorted(reply.timeline.components().items()):
        print(f"  {component:22s} {micros:8.1f} us")


if __name__ == "__main__":
    main()
