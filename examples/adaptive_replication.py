#!/usr/bin/env python
"""Runtime adaptive replication (paper Section 4.2, Fig. 6).

A three-replica service starts in resource-frugal warm passive
replication.  Two closed-loop clients drive a load that spikes past
the adaptation threshold; the replicated-state-driven policy switches
the group to active replication for the duration of the burst, then
back — the "low-level knob: adaptive replication" of Fig. 6.

Run:  python examples/adaptive_replication.py
"""

from repro.core import ThresholdSwitchPolicy
from repro.experiments import run_adaptive_scenario
from repro.replication import ReplicationStyle
from repro.workload import SpikeProfile


def main() -> None:
    profile = SpikeProfile(base_rate=100.0, spike_rate=1100.0,
                           spike_start_us=1_500_000.0,
                           spike_end_us=5_500_000.0)
    policy = ThresholdSwitchPolicy(rate_high_per_s=400.0,
                                   rate_low_per_s=200.0)

    print("running the adaptive configuration (threshold policy) ...")
    adaptive = run_adaptive_scenario(profile, duration_us=7_000_000.0,
                                     policy=policy, n_clients=2, seed=0)
    print("running the static warm-passive baseline ...")
    static = run_adaptive_scenario(
        profile, duration_us=7_000_000.0, n_clients=2,
        static_style=ReplicationStyle.WARM_PASSIVE, seed=0)

    print("\nrequest rate observed by the adaptation managers "
          "(10 samples/s):")
    previous_style = None
    style_iter = iter(adaptive.style_series)
    current = next(style_iter, (0.0, "?"))
    upcoming = next(style_iter, None)
    for time_us, rate in adaptive.rate_series[::5]:
        while upcoming is not None and upcoming[0] <= time_us:
            current = upcoming
            upcoming = next(style_iter, None)
        bar = "#" * int(rate / 25)
        marker = f"  <{current[1]}>" if current[1] != previous_style else ""
        previous_style = current[1]
        print(f"  {time_us / 1e6:5.2f}s {rate:7.0f} req/s |{bar}{marker}")

    print("\nstyle switches (Fig. 5 protocol):")
    for record in adaptive.switch_events:
        print(f"  t={record.started_at / 1e6:.2f}s  "
              f"{record.from_style.value} -> {record.to_style.value}  "
              f"(completed in {record.duration_us:.0f} us, "
              f"{record.queued_requests} requests queued)")

    print("\nadaptive vs static warm passive under the same load:")
    gain = (adaptive.observed_arrival_rate_per_s
            / static.observed_arrival_rate_per_s - 1.0)
    print(f"  observed arrival rate: adaptive "
          f"{adaptive.observed_arrival_rate_per_s:7.1f}/s   "
          f"static {static.observed_arrival_rate_per_s:7.1f}/s   "
          f"(gain {gain * 100:+.1f} %; the paper measured +4.1 %)")
    print(f"  mean latency:          adaptive "
          f"{adaptive.mean_latency_us:7.0f} us  "
          f"static {static.mean_latency_us:7.0f} us")
    print("\nwhy: active replication answers faster under load, so the"
          "\nclosed-loop clients can send their next requests sooner —"
          "\nexactly the speed-up effect Section 4.2 describes.")


if __name__ == "__main__":
    main()
