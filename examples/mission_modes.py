#!/usr/bin/env python
"""Mission modes: the paper's Section 5 motivating scenario.

"Versatile dependability is essential for long-running applications
that cannot be stopped (e.g., during a space flight), but that have
several modes of operation with different resource and performance
requirements."

A spacecraft-style telemetry service runs a long simulated mission
driven by a :class:`ModeManager` over three declared operating modes:

- **encounter** — active replication, tight latency contract (the
  "limited window of opportunity" where data is critical);
- **cruise** — resource-conservative warm passive with a relaxed
  contract;
- **safe** — degraded fallback the manager may step down to when a
  mode's contracts keep failing (Section 3.1's "alternative (possibly
  degraded) behavioral contracts").

During the mission a replica host fails (hardware crash fault); the
service keeps answering throughout.

Run:  python examples/mission_modes.py
"""

from repro.adaptation import ModeManager, OperatingMode
from repro.core import NumReplicasKnob, ReplicationStyleKnob
from repro.experiments import Testbed, deploy_client, deploy_replica
from repro.faults import FaultInjector
from repro.monitoring import Contract, MetricsSnapshot
from repro.orb import BusyServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicaFactory,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.tools import render_timeline, summarize_trace
from repro.workload import ClosedLoopClient


def main() -> None:
    testbed = Testbed.paper_testbed(4, 1, seed=7)
    config = ReplicationConfig(style=ReplicationStyle.WARM_PASSIVE,
                               group="telemetry")
    style_knob = ReplicationStyleKnob([])

    def spawn(host):
        replica = deploy_replica(
            testbed, host.name, config,
            {"telemetry": lambda: BusyServant(processing_us=40,
                                              reply_bytes=512,
                                              state_bytes=2048)},
            process_name=f"telemetry@{host.name}")
        style_knob.add_replica(replica.replicator)
        return replica

    manager_gcs = testbed.connect(testbed.spawn("w01", "mgr"))
    hosts = [testbed.hosts[f"s{i:02d}"] for i in range(1, 5)]
    factory = ReplicaFactory(manager_gcs, "telemetry", hosts, spawn,
                             target=3,
                             calibration=testbed.calibration.replication)
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="telemetry", expected_style=ReplicationStyle.WARM_PASSIVE))
    injector = FaultInjector(testbed.sim, testbed.network)
    testbed.run(3_000_000)

    modes = ModeManager(
        [
            OperatingMode(name="encounter",
                          style=ReplicationStyle.ACTIVE, n_replicas=3,
                          contracts=(Contract("latency",
                                              "latency_mean_us",
                                              limit=2_500.0),)),
            OperatingMode(name="cruise",
                          style=ReplicationStyle.WARM_PASSIVE,
                          n_replicas=3,
                          contracts=(Contract("latency",
                                              "latency_mean_us",
                                              limit=20_000.0),)),
            OperatingMode(name="safe",
                          style=ReplicationStyle.WARM_PASSIVE,
                          n_replicas=2, checkpoint_interval=10,
                          contracts=(Contract("latency",
                                              "latency_mean_us",
                                              limit=100_000.0),)),
        ],
        style_knob=style_knob, replicas_knob=NumReplicasKnob(factory))

    def run_phase(n_requests):
        loader = ClosedLoopClient(client, n_requests,
                                  object_key="telemetry",
                                  payload_bytes=256)
        loader.start()
        while not loader.done:
            testbed.run(500_000)
        snapshot = MetricsSnapshot(
            time=testbed.now,
            latency_mean_us=loader.stats.mean_latency_us)
        status = modes.evaluate(snapshot)
        print(f"  mode={modes.current_mode.name:10s} "
              f"{n_requests:4d} requests  "
              f"mean={loader.stats.mean_latency_us:7.0f} us  "
              f"contract: {status.value}")

    print("phase 1 — cruise (warm passive, resources conserved):")
    modes.set_mode("cruise", time=testbed.now)
    testbed.run(2_000_000)
    run_phase(60)

    print("\nencounter window opens (operator sets the mode):")
    modes.set_mode("encounter", time=testbed.now)
    testbed.run(2_000_000)
    run_phase(120)

    print("\nhardware fault: host s02 dies mid-encounter ...")
    injector.crash_host_at(testbed.hosts["s02"], testbed.now + 1000)
    testbed.run(1_700_000)
    run_phase(80)
    print(f"  (the factory respawned a replica: "
          f"{factory.live_count} live)")

    print("\nencounter window closes:")
    modes.set_mode("cruise", time=testbed.now)
    testbed.run(2_000_000)
    run_phase(60)

    print("\nmission transitions:")
    for transition in modes.transitions:
        print(f"  t={transition.time / 1e6:6.1f}s  "
              f"{transition.from_mode or '-':10s} -> "
              f"{transition.to_mode:10s} ({transition.reason})")

    print("\nannotated run timeline (faults, switches, view changes):")
    print(render_timeline(testbed.sim.trace, categories=[
        ("host.crash", "FAULT"), ("gcs.suspect", "DETECT"),
        ("gcs.install", "VIEW"), ("repl.switch", "SWITCH"),
        ("repl.failover", "FAILOVER"), ("repl.factory", "FACTORY"),
    ], limit=20))

    summary = summarize_trace(testbed.sim.trace)
    print(f"\nrun summary: {summary['style_switches']} style switches, "
          f"{summary['host_crashes']} host crash(es), "
          f"{summary['daemon_view_changes']} daemon view change(s), "
          f"{summary['failovers']} failover(s)")


if __name__ == "__main__":
    main()
