#!/usr/bin/env python
"""A dependable key-value store built on versatile dependability.

A realistic domain application: a replicated KV store whose durability
and latency requirements *change over its lifetime* — exactly the
workload class the paper's introduction motivates.

1. **Ingest phase** — bulk writes; throughput matters, so the store
   runs active replication (every replica executes every put).
2. **Serving phase** — reads with a tight latency budget, chosen with
   the real-time knob's probabilistic deadline machinery.
3. **Archival phase** — the store goes warm passive with SAFE-grade
   checkpoints: every acknowledged write is provably held by every
   backup's daemon before the client sees the reply.

Along the way a replica is lost and the group keeps answering, and
duplicate client retries are shown to be idempotent.

Run:  python examples/replicated_kvstore.py
"""

from repro.experiments import (
    Testbed,
    deploy_client,
    deploy_replica_group,
)
from repro.orb import KeyValueServant, marshalled_size
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)


def call(testbed, client, operation, payload):
    replies = []
    nbytes = marshalled_size(payload)
    client.orb_client.invoke("kv", operation, payload, nbytes,
                             replies.append)
    testbed.run(3_000_000)
    assert replies, f"no reply for {operation}"
    reply = replies[0]
    rtt = reply.timeline.completed_at - reply.timeline.started_at
    return reply.payload, rtt


def main() -> None:
    testbed = Testbed.paper_testbed(3, 1, seed=13)
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="kv",
                               safe_checkpoints=True)
    replicas = deploy_replica_group(testbed, ["s01", "s02", "s03"],
                                    config, {"kv": KeyValueServant})
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="kv", expected_style=ReplicationStyle.ACTIVE))
    testbed.run(100_000)

    print("phase 1 — ingest (active replication, every replica executes):")
    records = {
        "telemetry/0001": {"temp": 21.4, "voltage": 3.31},
        "telemetry/0002": {"temp": 21.9, "voltage": 3.29},
        "config/thresholds": [10, 50, 90],
        "log/boot": "system nominal",
    }
    total_rtt = 0.0
    for key, value in records.items():
        result, rtt = call(testbed, client, "put", (key, value))
        total_rtt += rtt
    print(f"  stored {len(records)} records, "
          f"mean put latency {total_rtt / len(records):.0f} us")
    size, _ = call(testbed, client, "size", None)
    print(f"  store size (from the fastest replica): {size}")
    state, state_bytes = replicas[0].orb_server.capture_state()
    print(f"  marshalled state size: {state_bytes} bytes "
          f"(measured from the real contents)")

    print("\nphase 2 — a replica is lost mid-serving:")
    replicas[1].crash()
    value, rtt = call(testbed, client, "get", "telemetry/0002")
    print(f"  get telemetry/0002 -> {value}   [{rtt:.0f} us, "
          f"{client.replicator.retries} retries]")

    print("\nphase 3 — archival (warm passive + SAFE checkpoints):")
    live = next(r for r in replicas if r.alive)
    live.replicator.request_switch(ReplicationStyle.WARM_PASSIVE)
    testbed.run(1_500_000)
    styles = [r.replicator.style.short for r in replicas if r.alive]
    print(f"  styles now: {styles} (P = warm passive)")
    result, rtt = call(testbed, client, "put",
                       ("archive/manifest", list(records)))
    print(f"  durable put -> {result}   [{rtt:.0f} us; the reply "
          f"waited for the SAFE checkpoint]")

    print("\nconsistency check across survivors:")
    for replica in replicas:
        if replica.alive:
            keys = sorted(replica.servants["kv"].data)
            print(f"  {replica.process.name}: {len(keys)} keys")
    survivors = [r for r in replicas if r.alive]
    assert all(r.servants["kv"].data == survivors[0].servants["kv"].data
               for r in survivors)
    print("  all surviving replicas hold identical data.")


if __name__ == "__main__":
    main()
